// Fault-tolerance tests: full-state checkpoint/resume (bit-identical
// continuation for both trainers), checkpoint-format hardening, the
// deterministic fault injector, elastic recovery after device failure, the
// non-finite training guards, the divergence watchdog, and dataset-row
// validation on load.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>

#include "data/dataset_io.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/fault.hpp"
#include "train/checkpoint.hpp"
#include "train/scheduler.hpp"
#include "train/trainer.hpp"

namespace fastchg {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

model::ModelConfig tiny_cfg() {
  model::ModelConfig cfg = model::ModelConfig::fast();
  cfg.feat_dim = 8;
  cfg.num_radial = 5;
  cfg.num_angular = 5;
  cfg.num_layers = 1;
  return cfg;
}

data::Dataset small_dataset(index_t n = 16, std::uint64_t seed = 11) {
  data::GeneratorConfig g;
  g.min_atoms = 2;
  g.max_atoms = 10;
  g.num_species = 16;
  return data::Dataset::generate(n, seed, g);
}

std::vector<index_t> all_rows(const data::Dataset& ds) {
  std::vector<index_t> rows(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    rows[static_cast<std::size_t>(i)] = i;
  }
  return rows;
}

/// All parameters of `net` flattened, for bitwise comparison.
std::vector<float> flat_params(const model::CHGNet& net) {
  std::vector<float> out;
  for (const auto& p : net.parameters()) {
    const auto v = p.value().to_vector();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::string temp_path(const char* name) {
  // Pid-unique: ctest runs each test as its own process, possibly in
  // parallel, and fixtures sharing a literal /tmp name would race.
  return (std::filesystem::temp_directory_path() /
          (std::to_string(::getpid()) + "_" + name))
      .string();
}

/// Copy of `ds`'s crystals with `poison` applied to row `row`, re-built
/// without relabelling (so the poisoned labels survive).
data::Dataset poisoned_dataset(const data::Dataset& ds,
                               const std::function<void(data::Crystal&)>& f,
                               index_t row) {
  std::vector<data::Crystal> crystals;
  for (index_t i = 0; i < ds.size(); ++i) {
    crystals.push_back(ds[i].crystal);
  }
  f(crystals[static_cast<std::size_t>(row)]);
  return data::Dataset::from_crystals(std::move(crystals),
                                      ds.graph_config(), {},
                                      /*relabel=*/false);
}

// ---------------------------------------------------------------------------
// single-device checkpoint / resume
// ---------------------------------------------------------------------------

TEST(Checkpoint, RoundTripRestoresFullState) {
  data::Dataset ds = small_dataset();
  auto rows = all_rows(ds);
  train::TrainConfig tc;
  tc.batch_size = 4;
  tc.epochs = 4;
  tc.prefetch = false;

  model::CHGNet net(tiny_cfg(), 1);
  train::Trainer trainer(net, tc);
  trainer.train_epoch(ds, rows, 0);
  const std::string path = temp_path("fastchg_ft_roundtrip.bin");
  trainer.save_checkpoint(path);

  model::CHGNet net2(tiny_cfg(), 99);  // different init, fully overwritten
  train::Trainer restored(net2, tc);
  restored.resume(path);
  EXPECT_EQ(flat_params(net), flat_params(net2));
  EXPECT_EQ(restored.next_epoch(), 1);
  EXPECT_EQ(restored.global_step(), trainer.global_step());
  ASSERT_TRUE(net2.has_atom_ref());
  EXPECT_EQ(net.atom_ref().to_vector(), net2.atom_ref().to_vector());
  // Adam moments restored too: the *next* step must match bitwise.
  trainer.train_epoch(ds, rows, 1);
  restored.train_epoch(ds, rows, 1);
  EXPECT_EQ(flat_params(net), flat_params(net2));
  std::filesystem::remove(path);
}

TEST(Checkpoint, ResumeEquivalenceSingleDevice) {
  // Acceptance: training 2N epochs straight == N epochs + save + resume + N.
  data::Dataset ds = small_dataset();
  auto rows = all_rows(ds);
  train::TrainConfig tc;
  tc.batch_size = 4;
  tc.epochs = 4;
  tc.prefetch = false;

  model::CHGNet straight(tiny_cfg(), 3);
  train::Trainer a(straight, tc);
  a.fit(ds, rows);

  model::CHGNet interrupted(tiny_cfg(), 3);
  train::Trainer b(interrupted, tc);
  b.train_epoch(ds, rows, 0);
  b.train_epoch(ds, rows, 1);
  const std::string path = temp_path("fastchg_ft_resume_equiv.bin");
  b.save_checkpoint(path);

  model::CHGNet resumed(tiny_cfg(), 77);
  train::Trainer c(resumed, tc);
  c.resume(path);
  EXPECT_EQ(c.next_epoch(), 2);
  c.fit(ds, rows);  // continues at epoch 2, runs 2 and 3

  EXPECT_EQ(flat_params(straight), flat_params(resumed));
  std::filesystem::remove(path);
}

TEST(Checkpoint, SaveIsAtomicAndOverwrites) {
  model::CHGNet net(tiny_cfg(), 5);
  train::TrainConfig tc;
  train::Trainer trainer(net, tc);
  const std::string path = temp_path("fastchg_ft_atomic.bin");
  trainer.save_checkpoint(path);
  const auto first_size = std::filesystem::file_size(path);
  trainer.save_checkpoint(path);  // overwrite in place
  EXPECT_EQ(std::filesystem::file_size(path), first_size);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  model::CHGNet net2(tiny_cfg(), 6);
  train::Trainer restored(net2, tc);
  restored.resume(path);
  EXPECT_EQ(flat_params(net), flat_params(net2));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// checkpoint format hardening
// ---------------------------------------------------------------------------

class CheckpointFormat : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("fastchg_ft_format.bin");
    model::CHGNet net(tiny_cfg(), 7);
    nn::save_parameters(net, path_);
    std::ifstream is(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(is),
                  std::istreambuf_iterator<char>());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void rewrite(const std::string& bytes) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  void expect_load_throws(const char* needle) {
    model::CHGNet net(tiny_cfg(), 8);
    try {
      nn::load_parameters(net, path_);
      FAIL() << "expected load to throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(CheckpointFormat, RejectsTruncated) {
  rewrite(bytes_.substr(0, bytes_.size() / 2));
  expect_load_throws("truncated");
}

TEST_F(CheckpointFormat, RejectsWrongMagic) {
  std::string bad = bytes_;
  bad[0] = static_cast<char>(~bad[0]);
  rewrite(bad);
  expect_load_throws("not a FastCHGNet checkpoint");
}

TEST_F(CheckpointFormat, RejectsUnknownVersion) {
  std::string bad = bytes_;
  const std::uint32_t v = 99;
  std::memcpy(bad.data() + 4, &v, sizeof(v));  // version field follows magic
  rewrite(bad);
  expect_load_throws("version");
}

TEST_F(CheckpointFormat, RejectsTrailingGarbage) {
  rewrite(bytes_ + "extra bytes after the last section");
  expect_load_throws("trailing");
}

TEST_F(CheckpointFormat, ReadsVersion1Files) {
  // A v1 file is a v2 file with the version patched back and the (empty)
  // section list -- a single u64 count of 0 -- removed.
  std::string v1 = bytes_.substr(0, bytes_.size() - sizeof(std::uint64_t));
  const std::uint32_t v = 1;
  std::memcpy(v1.data() + 4, &v, sizeof(v));
  rewrite(v1);
  model::CHGNet src(tiny_cfg(), 7), dst(tiny_cfg(), 10);
  nn::load_parameters(dst, path_);
  EXPECT_EQ(flat_params(src), flat_params(dst));
}

TEST(CheckpointSections, RequireSectionNamesTheMissingSection) {
  model::CHGNet net(tiny_cfg(), 12);
  const std::string path = temp_path("fastchg_ft_nosection.bin");
  nn::save_parameters(net, path);  // weights only, no trainer state
  train::TrainConfig tc;
  train::Trainer trainer(net, tc);
  try {
    trainer.resume(path);
    FAIL() << "expected resume to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("trainer"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// rng state
// ---------------------------------------------------------------------------

TEST(RngState, RoundTripContinuesTheStream) {
  Rng a(123);
  for (int i = 0; i < 17; ++i) a.uniform();
  const std::string snap = a.state();
  std::vector<double> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(a.uniform());
  Rng b(999);
  b.set_state(snap);
  for (double e : expect) EXPECT_EQ(b.uniform(), e);
}

// ---------------------------------------------------------------------------
// fault plans
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, RandomIsSeedDeterministic) {
  const auto a = parallel::FaultPlan::random(42, 8, 50, 0.02, 0.05, 0.05);
  const auto b = parallel::FaultPlan::random(42, 8, 50, 0.02, 0.05, 0.05);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].iteration, b.events[i].iteration);
    EXPECT_EQ(a.events[i].device, b.events[i].device);
    EXPECT_EQ(a.events[i].factor, b.events[i].factor);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
  }
  const auto c = parallel::FaultPlan::random(43, 8, 50, 0.02, 0.05, 0.05);
  EXPECT_NE(a.events.size(), c.events.size());
}

TEST(FaultPlanTest, ParsesTheCliGrammar) {
  const auto plan =
      parallel::parse_fault_plan("fail:3@1, slow:0@2*4#3; comm@5*2.5#2");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, parallel::FaultKind::kDeviceFailure);
  EXPECT_EQ(plan.events[0].device, 3);
  EXPECT_EQ(plan.events[0].iteration, 1);
  EXPECT_EQ(plan.events[1].kind, parallel::FaultKind::kStraggler);
  EXPECT_EQ(plan.events[1].device, 0);
  EXPECT_EQ(plan.events[1].iteration, 2);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 4.0);
  EXPECT_EQ(plan.events[1].duration, 3);
  EXPECT_EQ(plan.events[2].kind, parallel::FaultKind::kCommDegrade);
  EXPECT_EQ(plan.events[2].iteration, 5);
  EXPECT_DOUBLE_EQ(plan.events[2].factor, 2.5);
  EXPECT_EQ(plan.events[2].duration, 2);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parallel::parse_fault_plan("bogus"), Error);
  EXPECT_THROW(parallel::parse_fault_plan("fail:3"), Error);       // no @I
  EXPECT_THROW(parallel::parse_fault_plan("fail:x@1"), Error);     // bad int
  EXPECT_THROW(parallel::parse_fault_plan("fail:-1@0"), Error);    // device
  EXPECT_THROW(parallel::parse_fault_plan("slow:1@2"), Error);     // factor
  EXPECT_THROW(parallel::parse_fault_plan("slow:1@2*0.5"), Error); // < 1
  EXPECT_THROW(parallel::parse_fault_plan("comm@3"), Error);       // factor
  EXPECT_THROW(parallel::parse_fault_plan("slow:1@2*4#0"), Error); // duration
}

TEST(FaultInjectorTest, WindowsAndProducts) {
  const auto plan = parallel::parse_fault_plan(
      "fail:2@4,slow:1@3*2#2,slow:1@4*3#1,comm@1*5#2");
  parallel::FaultInjector inj(&plan);
  EXPECT_EQ(inj.failures_at(3), std::vector<int>{});
  EXPECT_EQ(inj.failures_at(4), std::vector<int>{2});
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(1, 3), 2.0);
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(1, 4), 6.0);  // both overlap
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(1, 5), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(inj.comm_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(inj.comm_factor(1), 5.0);
  EXPECT_DOUBLE_EQ(inj.comm_factor(2), 5.0);
  EXPECT_DOUBLE_EQ(inj.comm_factor(3), 1.0);
  parallel::FaultInjector none(nullptr);
  EXPECT_EQ(none.failures_at(0), std::vector<int>{});
  EXPECT_DOUBLE_EQ(none.compute_multiplier(0, 0), 1.0);
}

// ---------------------------------------------------------------------------
// elastic recovery
// ---------------------------------------------------------------------------

TEST(Elastic, KillOneOfEightMidEpochCompletesRebalanced) {
  // Acceptance: a seeded plan killing 1 of 8 devices mid-epoch; the epoch
  // completes on 7 with re-sharded data and the Eq.-14 LR for the reduced
  // global batch, and the survivors stay bit-identical.
  data::Dataset ds = small_dataset(64, 21);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 8;
  pc.global_batch = 16;  // per-device 2; 4 iterations before the failure
  pc.scale_lr = true;
  parallel::DataParallelTrainer dp(tiny_cfg(), pc, 1);

  const auto plan = parallel::parse_fault_plan("fail:3@2");
  const auto result = dp.train_epoch(ds, rows, 0, &plan);

  EXPECT_EQ(result.failed_devices, std::vector<int>{3});
  EXPECT_EQ(dp.num_alive(), 7);
  for (int d : dp.alive_devices()) EXPECT_NE(d, 3);
  EXPECT_EQ(dp.replica_divergence(), 0.0f);
  EXPECT_TRUE(std::isfinite(result.mean_loss));
  EXPECT_GT(result.recovery_seconds, 0.0);

  // 2 iterations on 8 devices, then the 32 unconsumed rows re-shard into
  // batches of 14 on 7 devices (drop_last drops the remainder 4).
  ASSERT_EQ(result.iterations.size(), 4u);
  EXPECT_EQ(result.iterations[0].num_alive, 8);
  EXPECT_EQ(result.iterations[1].num_alive, 8);
  EXPECT_EQ(result.iterations[2].num_alive, 7);
  EXPECT_EQ(result.iterations[3].num_alive, 7);
  EXPECT_EQ(result.iterations[2].device_compute_s.size(), 7u);
  EXPECT_GT(result.iterations[2].recovery_s, 0.0);

  // Eq. 14 on the shrunken global batch (2 * 7 = 14).
  EXPECT_FLOAT_EQ(dp.effective_lr(),
                  train::scaled_init_lr(14, pc.lr_k, pc.base_lr));

  // Replaying the plan next epoch is a no-op: device 3 is already dead.
  const auto again = dp.train_epoch(ds, rows, 1, &plan);
  EXPECT_TRUE(again.failed_devices.empty());
  EXPECT_EQ(dp.num_alive(), 7);
}

TEST(Elastic, StragglerInflatesThatDevicesCompute) {
  data::Dataset ds = small_dataset(32, 31);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 4;
  pc.global_batch = 16;  // 2 iterations
  parallel::DataParallelTrainer dp(tiny_cfg(), pc, 2);
  const auto plan = parallel::parse_fault_plan("slow:1@1*1000#1");
  const auto result = dp.train_epoch(ds, rows, 0, &plan);
  ASSERT_EQ(result.iterations.size(), 2u);
  const auto& normal = result.iterations[0];
  const auto& slowed = result.iterations[1];
  // A 1000x multiplier dwarfs shard-size noise between the two iterations.
  EXPECT_GT(slowed.device_compute_s[1], 10.0 * normal.device_compute_s[1]);
  EXPECT_EQ(slowed.max_compute_s, slowed.device_compute_s[1]);
}

TEST(Elastic, CommDegradeScalesTheAllReduceCost) {
  data::Dataset ds = small_dataset(48, 41);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 4;
  pc.global_batch = 16;  // 3 iterations
  pc.overlap_comm = false;  // expose the raw cost for an exact check
  parallel::DataParallelTrainer dp(tiny_cfg(), pc, 3);
  const auto plan = parallel::parse_fault_plan("comm@1*4#1");
  const auto result = dp.train_epoch(ds, rows, 0, &plan);
  ASSERT_EQ(result.iterations.size(), 3u);
  // The cost model is deterministic: un-degraded iterations match exactly,
  // and a 4x factor scales both the bandwidth and latency terms 4x.
  EXPECT_DOUBLE_EQ(result.iterations[0].comm_s, result.iterations[2].comm_s);
  EXPECT_NEAR(result.iterations[1].comm_s, 4.0 * result.iterations[0].comm_s,
              1e-12 + 1e-9 * result.iterations[1].comm_s);
}

TEST(Elastic, ResumeEquivalenceDataParallel) {
  // Acceptance: 3 epochs straight == 1 epoch + save + resume + 2 epochs,
  // bit-identical on every replica.
  data::Dataset ds = small_dataset(16, 51);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 2;
  pc.global_batch = 8;
  parallel::DataParallelTrainer straight(tiny_cfg(), pc, 4);
  for (index_t e = 0; e < 3; ++e) straight.train_epoch(ds, rows, e);

  parallel::DataParallelTrainer interrupted(tiny_cfg(), pc, 4);
  interrupted.train_epoch(ds, rows, 0);
  const std::string path = temp_path("fastchg_ft_dp_resume.bin");
  interrupted.save_checkpoint(path, 1);

  parallel::DataParallelTrainer resumed(tiny_cfg(), pc, 88);
  const index_t next = resumed.resume(path);
  EXPECT_EQ(next, 1);
  for (index_t e = next; e < 3; ++e) resumed.train_epoch(ds, rows, e);

  EXPECT_EQ(flat_params(straight.replica(0)), flat_params(resumed.replica(0)));
  EXPECT_EQ(resumed.replica_divergence(), 0.0f);
  std::filesystem::remove(path);
}

TEST(Elastic, ResumeRejectsDeviceCountMismatch) {
  parallel::DataParallelConfig pc;
  pc.num_devices = 2;
  pc.global_batch = 8;
  parallel::DataParallelTrainer dp(tiny_cfg(), pc, 5);
  const std::string path = temp_path("fastchg_ft_dp_devices.bin");
  dp.save_checkpoint(path, 0);
  parallel::DataParallelConfig other = pc;
  other.num_devices = 4;
  other.global_batch = 8;
  parallel::DataParallelTrainer wrong(tiny_cfg(), other, 5);
  EXPECT_THROW(wrong.resume(path), Error);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// elastic join
// ---------------------------------------------------------------------------

TEST(ElasticJoin, FailedDeviceRejoinsBitIdenticalToLead) {
  // Acceptance: `fail:2@5,join:2@9` on 8 devices -- the ring shrinks to 7,
  // then device 2 re-enters at iteration 9: the lead streams its full state
  // (params + both Adam moments + AtomRef) through the fixed staging
  // buffer, the unconsumed rows re-shard over 8 again, and the LR rescales
  // back up to the full-batch Eq. 14 value.
  data::Dataset ds = small_dataset(192, 91);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 8;
  pc.global_batch = 16;  // per-device 2; 12 iterations when nothing fails
  pc.scale_lr = true;
  parallel::DataParallelTrainer dp(tiny_cfg(), pc, 6);

  const auto plan = parallel::parse_fault_plan("fail:2@5,join:2@9");
  const auto result = dp.train_epoch(ds, rows, 0, &plan);

  EXPECT_EQ(result.failed_devices, std::vector<int>{2});
  EXPECT_EQ(result.joined_devices, std::vector<int>{2});
  EXPECT_EQ(dp.num_alive(), 8);
  EXPECT_GT(result.recovery_seconds, 0.0);
  EXPECT_GT(result.join_seconds, 0.0);

  // 5 iterations on 8 devices (80 rows), 4 on 7 (batch 14, 56 rows), and
  // the 56 left re-shard into 3 full batches of 16 on the regrown ring.
  ASSERT_EQ(result.iterations.size(), 12u);
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const int expect_alive = i < 5 ? 8 : (i < 9 ? 7 : 8);
    EXPECT_EQ(result.iterations[i].num_alive, expect_alive) << "iter " << i;
  }

  EXPECT_EQ(flat_params(dp.replica(2)), flat_params(dp.master()));
  EXPECT_EQ(dp.replica_divergence(), 0.0f);
  EXPECT_FLOAT_EQ(dp.effective_lr(),
                  train::scaled_init_lr(16, pc.lr_k, pc.base_lr));

  // The joiner must have received the optimizer state too, not just the
  // weights: a second epoch only stays in lockstep (no watchdog repairs,
  // zero divergence) if the streamed Adam moments matched bit-for-bit.
  const auto next = dp.train_epoch(ds, rows, 1);
  EXPECT_TRUE(std::isfinite(next.mean_loss));
  EXPECT_EQ(next.rebroadcasts, 0);
  EXPECT_EQ(dp.replica_divergence(), 0.0f);

  // Convergence: over the same two epochs the elastic run's validation
  // error stays within sight of a fault-free twin (both deterministic, so
  // the loose bound is stable).
  parallel::DataParallelTrainer clean(tiny_cfg(), pc, 6);
  for (index_t e = 0; e < 2; ++e) clean.train_epoch(ds, rows, e);
  const auto mae_elastic = train::evaluate_model(dp.master(), ds, rows, 16);
  const auto mae_clean = train::evaluate_model(clean.master(), ds, rows, 16);
  EXPECT_TRUE(std::isfinite(mae_elastic.energy_mae_mev_atom));
  EXPECT_LT(mae_elastic.energy_mae_mev_atom,
            2.0 * mae_clean.energy_mae_mev_atom + 50.0);
}

TEST(ElasticJoin, EpochLedgerAttributesJoinCostToTheJoinIteration) {
  // The one-off elastic costs must land exactly on the iteration whose
  // step they delayed, and the per-iteration ledger must sum back to the
  // epoch totals -- same accumulation order, so equality is exact.
  data::Dataset ds = small_dataset(96, 93);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 4;
  pc.global_batch = 8;  // per-device 2
  parallel::DataParallelTrainer dp(tiny_cfg(), pc, 7);
  const auto plan = parallel::parse_fault_plan("fail:1@3,join:1@7");
  const auto result = dp.train_epoch(ds, rows, 0, &plan);

  // 3 iterations on 4 devices, 4 on 3 (batch 6), then 6 on 4 again.
  ASSERT_EQ(result.iterations.size(), 13u);
  double join_sum = 0.0, recovery_sum = 0.0, step_sum = 0.0;
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const auto& it = result.iterations[i];
    join_sum += it.join_s;
    recovery_sum += it.recovery_s;
    step_sum += it.step_s;
    EXPECT_DOUBLE_EQ(it.step_s, it.max_compute_s + it.exposed_comm_s +
                                    it.exposed_h2d_s + it.recovery_s +
                                    it.join_s)
        << "iter " << i;
    EXPECT_EQ(it.recovery_s > 0.0, i == 3) << "iter " << i;
    EXPECT_EQ(it.join_s > 0.0, i == 7) << "iter " << i;
  }
  EXPECT_DOUBLE_EQ(join_sum, result.join_seconds);
  EXPECT_DOUBLE_EQ(recovery_sum, result.recovery_seconds);
  EXPECT_DOUBLE_EQ(step_sum, result.simulated_seconds);
}

TEST(ElasticJoin, ShrinkJoinShrinkChurnStaysConvergent) {
  // A device drops, rejoins, and a different one drops, all inside one
  // epoch; a second clean epoch then runs on the final 3-device ring.  The
  // run must stay in lockstep throughout and end within sight of a
  // fault-free twin's validation error (deterministic, so the loose bound
  // is stable).
  data::Dataset ds = small_dataset(96, 95);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 4;
  pc.global_batch = 8;
  pc.scale_lr = true;
  parallel::DataParallelTrainer churn(tiny_cfg(), pc, 9);
  const auto plan = parallel::parse_fault_plan("fail:1@2,join:1@5,fail:3@8");
  const auto result = churn.train_epoch(ds, rows, 0, &plan);

  EXPECT_EQ(result.failed_devices, (std::vector<int>{1, 3}));
  EXPECT_EQ(result.joined_devices, std::vector<int>{1});
  EXPECT_EQ(churn.num_alive(), 3);
  EXPECT_EQ(churn.alive_devices(), (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(std::isfinite(result.mean_loss));
  EXPECT_EQ(churn.replica_divergence(), 0.0f);
  EXPECT_FLOAT_EQ(churn.effective_lr(),
                  train::scaled_init_lr(6, pc.lr_k, pc.base_lr));

  const auto second = churn.train_epoch(ds, rows, 1);
  EXPECT_TRUE(std::isfinite(second.mean_loss));
  EXPECT_EQ(churn.replica_divergence(), 0.0f);
  for (int d : churn.alive_devices()) {
    for (float w : flat_params(churn.replica(d))) ASSERT_TRUE(std::isfinite(w));
  }

  parallel::DataParallelTrainer clean(tiny_cfg(), pc, 9);
  for (index_t e = 0; e < 2; ++e) clean.train_epoch(ds, rows, e);
  const auto mae_churn = train::evaluate_model(churn.master(), ds, rows, 8);
  const auto mae_clean = train::evaluate_model(clean.master(), ds, rows, 8);
  EXPECT_TRUE(std::isfinite(mae_churn.energy_mae_mev_atom));
  EXPECT_LT(mae_churn.energy_mae_mev_atom,
            3.0 * mae_clean.energy_mae_mev_atom + 100.0);
}

TEST(ElasticJoin, NoOpJoinsPerturbNothing) {
  // Joins for an already-alive device and for an out-of-range id are
  // skipped entirely; the run is bit-identical to a fault-free one (the
  // no-fault invariant the PR promises).
  data::Dataset ds = small_dataset(32, 97);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 4;
  pc.global_batch = 8;
  parallel::DataParallelTrainer noop(tiny_cfg(), pc, 13);
  const auto plan = parallel::parse_fault_plan("join:0@1,join:9@2");
  const auto result = noop.train_epoch(ds, rows, 0, &plan);
  EXPECT_TRUE(result.joined_devices.empty());
  EXPECT_EQ(result.join_seconds, 0.0);
  ASSERT_EQ(result.iterations.size(), 4u);
  for (const auto& it : result.iterations) EXPECT_EQ(it.join_s, 0.0);

  parallel::DataParallelTrainer clean(tiny_cfg(), pc, 13);
  clean.train_epoch(ds, rows, 0);
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(flat_params(noop.replica(d)), flat_params(clean.replica(d)))
        << "device " << d;
  }
}

TEST(ElasticJoin, HierarchicalCommIsBitIdenticalToFlat) {
  // The two-level all-reduce only re-prices communication; the gradient
  // arithmetic runs in the same canonical order either way, so an elastic
  // epoch (shrink + rejoin on a ring spanning the node boundary) produces
  // bit-identical weights under both comm models.
  data::Dataset ds = small_dataset(64, 99);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 8;
  pc.global_batch = 16;
  const auto plan = parallel::parse_fault_plan("fail:2@1,join:2@3");

  pc.comm.hierarchical = true;
  parallel::DataParallelTrainer hier(tiny_cfg(), pc, 15);
  const auto hier_res = hier.train_epoch(ds, rows, 0, &plan);

  pc.comm.hierarchical = false;
  parallel::DataParallelTrainer flat(tiny_cfg(), pc, 15);
  const auto flat_res = flat.train_epoch(ds, rows, 0, &plan);

  EXPECT_EQ(hier_res.joined_devices, std::vector<int>{2});
  EXPECT_EQ(flat_res.joined_devices, std::vector<int>{2});
  for (int d = 0; d < 8; ++d) {
    EXPECT_EQ(flat_params(hier.replica(d)), flat_params(flat.replica(d)))
        << "device " << d;
  }
  EXPECT_EQ(hier.replica_divergence(), 0.0f);
}

// ---------------------------------------------------------------------------
// non-finite guards
// ---------------------------------------------------------------------------

TEST(Guard, SingleDevicePoisonedLabelsNeverReachWeights) {
  data::Dataset clean = small_dataset(16, 61);
  for (float bad : {kNaN, kInf, -kInf}) {
    data::Dataset ds = poisoned_dataset(
        clean, [bad](data::Crystal& c) { c.forces[0][1] = bad; }, 3);
    model::CHGNet net(tiny_cfg(), 6);
    train::TrainConfig tc;
    tc.batch_size = 4;
    tc.epochs = 2;
    tc.prefetch = false;
    train::Trainer trainer(net, tc);
    trainer.fit(ds, all_rows(ds));
    EXPECT_GT(trainer.skipped_steps(), 0);
    EXPECT_LT(trainer.lr_backoff_scale(), 1.0f);
    for (float w : flat_params(net)) ASSERT_TRUE(std::isfinite(w));
  }
}

TEST(Guard, DataParallelPoisonedShardSkipsInLockstep) {
  data::Dataset clean = small_dataset(16, 71);
  data::Dataset ds = poisoned_dataset(
      clean, [](data::Crystal& c) { c.energy = kNaN; }, 5);
  parallel::DataParallelConfig pc;
  pc.num_devices = 2;
  pc.global_batch = 8;
  parallel::DataParallelTrainer dp(tiny_cfg(), pc, 7);
  const auto result = dp.train_epoch(ds, all_rows(ds), 0);
  EXPECT_GT(result.skipped_steps, 0);
  EXPECT_EQ(dp.replica_divergence(), 0.0f);
  for (int d = 0; d < 2; ++d) {
    for (float w : flat_params(dp.replica(d))) ASSERT_TRUE(std::isfinite(w));
  }
}

TEST(Guard, EarlyStopTreatsNaNValScoreAsNoImprovement) {
  data::Dataset clean = small_dataset(20, 81);
  // Poison a validation row: every epoch's val_score is NaN, so the run
  // must stop after `patience` + 1 epochs instead of looping on NaN < best.
  data::Dataset ds = poisoned_dataset(
      clean, [](data::Crystal& c) { c.energy = kNaN; }, 18);
  std::vector<index_t> train_idx, val_idx{16, 17, 18, 19};
  for (index_t i = 0; i < 16; ++i) train_idx.push_back(i);
  model::CHGNet net(tiny_cfg(), 8);
  train::TrainConfig tc;
  tc.batch_size = 4;
  tc.epochs = 10;
  tc.prefetch = false;
  train::Trainer trainer(net, tc);
  const auto history = trainer.fit(ds, train_idx, val_idx, /*patience=*/2);
  EXPECT_EQ(history.size(), 3u);
  for (const auto& st : history) EXPECT_TRUE(std::isnan(st.val_score));
}

// ---------------------------------------------------------------------------
// divergence watchdog
// ---------------------------------------------------------------------------

TEST(Watchdog, RebroadcastRepairsAPoisonedReplica) {
  data::Dataset ds = small_dataset(16, 91);
  auto rows = all_rows(ds);
  parallel::DataParallelConfig pc;
  pc.num_devices = 2;
  pc.global_batch = 8;
  pc.divergence_check_every = 1;
  parallel::DataParallelTrainer dp(tiny_cfg(), pc, 9);
  dp.train_epoch(ds, rows, 0);
  EXPECT_EQ(dp.replica_divergence(), 0.0f);

  // Flip a weight on replica 1 (simulated bit-flip); the watchdog must
  // detect it on the next check and re-broadcast from the lead replica.
  auto params = dp.replica(1).parameters();
  params[0].node()->value.data()[0] += 1.0f;
  EXPECT_GT(dp.replica_divergence(), 0.0f);
  const auto result = dp.train_epoch(ds, rows, 1);
  EXPECT_GE(result.rebroadcasts, 1);
  EXPECT_GT(result.recovery_seconds, 0.0);
  EXPECT_EQ(dp.replica_divergence(), 0.0f);
}

// ---------------------------------------------------------------------------
// dataset row validation
// ---------------------------------------------------------------------------

class DatasetRowValidation : public ::testing::Test {
 protected:
  void expect_rejected(const std::function<void(data::Crystal&)>& poison,
                       const char* needle) {
    data::Dataset clean = small_dataset(4, 101);
    data::Dataset ds = poisoned_dataset(clean, poison, 2);
    const std::string path = temp_path("fastchg_ft_badrow.bin");
    data::save_dataset(ds, path);
    try {
      data::load_dataset(path);
      FAIL() << "expected load_dataset to reject row 2 (" << needle << ")";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("row 2"), std::string::npos) << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
    std::filesystem::remove(path);
  }
};

TEST_F(DatasetRowValidation, RejectsNonFiniteEnergy) {
  expect_rejected([](data::Crystal& c) { c.energy = kNaN; }, "energy");
}

TEST_F(DatasetRowValidation, RejectsNonFiniteForce) {
  expect_rejected([](data::Crystal& c) { c.forces[0][2] = kInf; }, "force");
}

TEST_F(DatasetRowValidation, RejectsNonFinitePosition) {
  expect_rejected([](data::Crystal& c) { c.frac[1][0] = kNaN; }, "position");
}

TEST_F(DatasetRowValidation, RejectsOutOfRangeSpecies) {
  expect_rejected([](data::Crystal& c) { c.species[0] = 200; }, "atomic");
  expect_rejected([](data::Crystal& c) { c.species[0] = 0; }, "atomic");
}

TEST_F(DatasetRowValidation, CleanRoundTripStillWorks) {
  data::Dataset ds = small_dataset(4, 111);
  const std::string path = temp_path("fastchg_ft_cleanrows.bin");
  data::save_dataset(ds, path);
  data::Dataset loaded = data::load_dataset(path);
  EXPECT_EQ(loaded.size(), ds.size());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fastchg
