// Differential suite for the SIMD op library (src/ops/, docs/ops.md).
//
// Every kernel family is compared scalar-vs-AVX2 over odd sizes (n = 1,
// primes, 8k +/- 1 tails, and > kBlock lengths) with the exactness contract
// from ops/dispatch.hpp pinned:
//
//   * bit-exact (memcmp):   all eltwise kernels, gather_rows,
//                           scatter_add_rows (including colliding indices),
//                           column-wise sum_dim0;
//   * tolerance-gated:      GEMM (FMA contraction), avx2::sum_all
//                           (reassociated lanes), basis sin/cos and rownorm
//                           (polynomial transcendentals + reassociated
//                           mean/var);
//   * pinned scalar:        the dispatching sum_all / sum_dim1 entry points
//                           must run the scalar reference at EVERY tier.
//
// Aliased in/out (o == a) is exercised for the in-place-capable eltwise
// kernels.  All inputs come from a seeded RNG; the seed is logged so a
// failure reproduces exactly.  AVX2 comparisons skip (not pass) on hosts
// or builds without AVX2+FMA.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "ops/basis.hpp"
#include "ops/dispatch.hpp"
#include "ops/eltwise.hpp"
#include "ops/gather_scatter.hpp"
#include "ops/gemm.hpp"
#include "ops/reduce.hpp"
#include "ops/rownorm.hpp"

namespace fastchg::ops {
namespace {

using index_t = std::int64_t;

constexpr unsigned kSeed = 20260808u;

// Odd sizes: singleton, primes, vector-width boundaries (8k +/- 1), and
// lengths past the fuse interpreter's 256-element chunk.
const std::vector<index_t> kSizes = {1, 2, 3, 7, 8, 9, 13, 16, 17, 31, 64, 97, 255, 256, 257, 1000, 1003};

std::vector<float> random_vec(std::mt19937& rng, index_t n, float lo = -4.0f,
                              float hi = 4.0f) {
  std::uniform_real_distribution<float> d(lo, hi);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = d(rng);
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

#define FASTCHG_REQUIRE_AVX2()                                      \
  do {                                                              \
    if (!avx2_supported()) {                                        \
      GTEST_SKIP() << "host/build has no AVX2+FMA; scalar only";    \
    }                                                               \
  } while (0)

class OpsDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    SCOPED_TRACE(::testing::Message() << "rng seed " << kSeed);
    rng_.seed(kSeed);
  }
  void TearDown() override { reset_simd_tier(); }
  std::mt19937 rng_;
};

// ---------------------------------------------------------------------------
// Eltwise: bit-exact class

using BinFn = void (*)(eltwise::index_t, const float*, const float*, float*);
using ScalFn = void (*)(eltwise::index_t, const float*, float, float*);
using UnFn = void (*)(eltwise::index_t, const float*, float*);

TEST_F(OpsDifferential, EltwiseBinaryBitExact) {
  FASTCHG_REQUIRE_AVX2();
  struct Row {
    const char* name;
    BinFn ref, vec;
  };
  const Row rows[] = {
      {"add", eltwise::scalar::add, eltwise::avx2::add},
      {"sub", eltwise::scalar::sub, eltwise::avx2::sub},
      {"mul", eltwise::scalar::mul, eltwise::avx2::mul},
      {"div", eltwise::scalar::div, eltwise::avx2::div},
  };
  for (index_t n : kSizes) {
    auto a = random_vec(rng_, n);
    auto b = random_vec(rng_, n, 0.25f, 4.0f);  // away from 0 for div
    for (const Row& r : rows) {
      std::vector<float> os(a.size()), ov(a.size());
      r.ref(n, a.data(), b.data(), os.data());
      r.vec(n, a.data(), b.data(), ov.data());
      EXPECT_TRUE(bitwise_equal(os, ov))
          << r.name << " diverges at n=" << n << " (seed " << kSeed << ")";
    }
  }
}

TEST_F(OpsDifferential, EltwiseScalarOperandBitExact) {
  FASTCHG_REQUIRE_AVX2();
  struct Row {
    const char* name;
    ScalFn ref, vec;
  };
  const Row rows[] = {
      {"add_s", eltwise::scalar::add_s, eltwise::avx2::add_s},
      {"sub_s", eltwise::scalar::sub_s, eltwise::avx2::sub_s},
      {"rsub_s", eltwise::scalar::rsub_s, eltwise::avx2::rsub_s},
      {"mul_s", eltwise::scalar::mul_s, eltwise::avx2::mul_s},
      {"div_s", eltwise::scalar::div_s, eltwise::avx2::div_s},
      {"rdiv_s", eltwise::scalar::rdiv_s, eltwise::avx2::rdiv_s},
  };
  for (index_t n : kSizes) {
    auto a = random_vec(rng_, n, 0.25f, 4.0f);
    const float s = 1.7f;
    for (const Row& r : rows) {
      std::vector<float> os(a.size()), ov(a.size());
      r.ref(n, a.data(), s, os.data());
      r.vec(n, a.data(), s, ov.data());
      EXPECT_TRUE(bitwise_equal(os, ov))
          << r.name << " diverges at n=" << n << " (seed " << kSeed << ")";
    }
  }
}

TEST_F(OpsDifferential, EltwiseUnaryBitExact) {
  FASTCHG_REQUIRE_AVX2();
  struct Row {
    const char* name;
    UnFn ref, vec;
    bool positive_only;
  };
  const Row rows[] = {
      {"neg", eltwise::scalar::neg, eltwise::avx2::neg, false},
      {"abs", eltwise::scalar::abs, eltwise::avx2::abs, false},
      {"square", eltwise::scalar::square, eltwise::avx2::square, false},
      {"recip", eltwise::scalar::recip, eltwise::avx2::recip, false},
      {"sqrt", eltwise::scalar::sqrt, eltwise::avx2::sqrt, true},
      {"sign", eltwise::scalar::sign, eltwise::avx2::sign, false},
  };
  for (index_t n : kSizes) {
    for (const Row& r : rows) {
      auto a = r.positive_only ? random_vec(rng_, n, 0.0f, 16.0f)
                               : random_vec(rng_, n);
      if (!r.positive_only && n > 2) a[static_cast<std::size_t>(n / 2)] = 0.0f;
      std::vector<float> os(a.size()), ov(a.size());
      r.ref(n, a.data(), os.data());
      r.vec(n, a.data(), ov.data());
      EXPECT_TRUE(bitwise_equal(os, ov))
          << r.name << " diverges at n=" << n << " (seed " << kSeed << ")";
    }
  }
}

TEST_F(OpsDifferential, EltwiseClampFamilyBitExactIncludingNaN) {
  FASTCHG_REQUIRE_AVX2();
  for (index_t n : kSizes) {
    auto a = random_vec(rng_, n);
    // The seed clamp passes NaN through (both comparisons false); the AVX2
    // blend must preserve that.
    if (n > 1) a[0] = std::nanf("");
    std::vector<float> os(a.size()), ov(a.size());
    eltwise::scalar::clamp(n, a.data(), -1.0f, 1.0f, os.data());
    eltwise::avx2::clamp(n, a.data(), -1.0f, 1.0f, ov.data());
    EXPECT_TRUE(bitwise_equal(os, ov)) << "clamp n=" << n;
    eltwise::scalar::clamp_mask(n, a.data(), -1.0f, 1.0f, os.data());
    eltwise::avx2::clamp_mask(n, a.data(), -1.0f, 1.0f, ov.data());
    EXPECT_TRUE(bitwise_equal(os, ov)) << "clamp_mask n=" << n;
  }
}

TEST_F(OpsDifferential, EltwiseAccumulatorsBitExact) {
  FASTCHG_REQUIRE_AVX2();
  for (index_t n : kSizes) {
    auto a = random_vec(rng_, n);
    auto o0 = random_vec(rng_, n);
    auto os = o0, ov = o0;
    eltwise::scalar::acc(n, a.data(), os.data());
    eltwise::avx2::acc(n, a.data(), ov.data());
    EXPECT_TRUE(bitwise_equal(os, ov)) << "acc n=" << n;
    os = o0;
    ov = o0;
    eltwise::scalar::axpy(n, 0.37f, a.data(), os.data());
    eltwise::avx2::axpy(n, 0.37f, a.data(), ov.data());
    EXPECT_TRUE(bitwise_equal(os, ov)) << "axpy n=" << n;
    os = o0;
    ov = o0;
    eltwise::scalar::scale(n, 1.3f, os.data());
    eltwise::avx2::scale(n, 1.3f, ov.data());
    EXPECT_TRUE(bitwise_equal(os, ov)) << "scale n=" << n;
  }
}

TEST_F(OpsDifferential, EltwiseAliasedInOut) {
  FASTCHG_REQUIRE_AVX2();
  // o == a is legal for every eltwise kernel: both tiers load each block
  // before storing it.  Result must equal the out-of-place run bitwise.
  for (index_t n : kSizes) {
    auto a = random_vec(rng_, n, 0.25f, 4.0f);
    auto b = random_vec(rng_, n, 0.25f, 4.0f);
    std::vector<float> expect(a.size());
    eltwise::scalar::mul(n, a.data(), b.data(), expect.data());
    auto inplace_s = a;
    eltwise::scalar::mul(n, inplace_s.data(), b.data(), inplace_s.data());
    EXPECT_TRUE(bitwise_equal(expect, inplace_s)) << "scalar alias n=" << n;
    auto inplace_v = a;
    eltwise::avx2::mul(n, inplace_v.data(), b.data(), inplace_v.data());
    EXPECT_TRUE(bitwise_equal(expect, inplace_v)) << "avx2 alias n=" << n;
    // Aliased self-square: o == a == b.
    eltwise::scalar::square(n, a.data(), expect.data());
    auto self_v = a;
    eltwise::avx2::mul(n, self_v.data(), self_v.data(), self_v.data());
    EXPECT_TRUE(bitwise_equal(expect, self_v)) << "self alias n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Gather / scatter: bit-exact class

TEST_F(OpsDifferential, GatherRowsBitExact) {
  FASTCHG_REQUIRE_AVX2();
  for (index_t w : {index_t{1}, index_t{3}, index_t{8}, index_t{17},
                    index_t{64}}) {
    const index_t rows = 29, k = 57;
    auto x = random_vec(rng_, rows * w);
    std::uniform_int_distribution<index_t> pick(0, rows - 1);
    std::vector<index_t> idx(static_cast<std::size_t>(k));
    for (auto& i : idx) i = pick(rng_);
    std::vector<float> os(static_cast<std::size_t>(k * w)),
        ov(static_cast<std::size_t>(k * w));
    gather_scatter::scalar::gather_rows(k, w, idx.data(), x.data(), os.data());
    gather_scatter::avx2::gather_rows(k, w, idx.data(), x.data(), ov.data());
    EXPECT_TRUE(bitwise_equal(os, ov)) << "gather w=" << w;
  }
}

TEST_F(OpsDifferential, ScatterAddRowsBitExactWithCollisions) {
  FASTCHG_REQUIRE_AVX2();
  for (index_t w : {index_t{1}, index_t{3}, index_t{8}, index_t{17},
                    index_t{64}}) {
    // rows << k forces many colliding destinations: the per-column
    // accumulation order (source order r = 0..k-1) must be preserved by the
    // vectorized kernel for the sums to stay bitwise equal.
    const index_t rows = 5, k = 97;
    auto s = random_vec(rng_, k * w);
    std::uniform_int_distribution<index_t> pick(0, rows - 1);
    std::vector<index_t> idx(static_cast<std::size_t>(k));
    for (auto& i : idx) i = pick(rng_);
    std::vector<float> os(static_cast<std::size_t>(rows * w), 42.0f),
        ov(static_cast<std::size_t>(rows * w), -42.0f);  // both pre-dirtied
    gather_scatter::scalar::scatter_add_rows(k, rows, w, idx.data(), s.data(),
                                             os.data());
    gather_scatter::avx2::scatter_add_rows(k, rows, w, idx.data(), s.data(),
                                           ov.data());
    EXPECT_TRUE(bitwise_equal(os, ov)) << "scatter w=" << w;
  }
}

// ---------------------------------------------------------------------------
// Reduce: sum_dim0 bit-exact; sum_all/sum_dim1 pinned scalar

TEST_F(OpsDifferential, SumDim0BitExact) {
  FASTCHG_REQUIRE_AVX2();
  for (index_t cols : kSizes) {
    const index_t rows = 37;
    auto x = random_vec(rng_, rows * cols);
    std::vector<float> os(static_cast<std::size_t>(cols)),
        ov(static_cast<std::size_t>(cols));
    reduce::scalar::sum_dim0(rows, cols, x.data(), os.data());
    reduce::avx2::sum_dim0(rows, cols, x.data(), ov.data());
    EXPECT_TRUE(bitwise_equal(os, ov)) << "sum_dim0 cols=" << cols;
  }
}

TEST_F(OpsDifferential, SumAllAndSumDim1PinnedScalarAtAvx2Tier) {
  FASTCHG_REQUIRE_AVX2();
  set_simd_tier(Tier::kAvx2);
  ASSERT_EQ(active_tier(), Tier::kAvx2);
  const index_t rows = 13, cols = 1003;
  auto x = random_vec(rng_, rows * cols);
  // The dispatching entry points must produce the scalar-reference bits
  // even with the AVX2 tier active: serial double accumulation is pinned.
  const double ref = reduce::scalar::sum_all(rows * cols, x.data());
  EXPECT_EQ(ref, reduce::sum_all(rows * cols, x.data()));
  std::vector<float> rs(static_cast<std::size_t>(rows)),
      rd(static_cast<std::size_t>(rows));
  reduce::scalar::sum_dim1(rows, cols, x.data(), rs.data());
  reduce::sum_dim1(rows, cols, x.data(), rd.data());
  EXPECT_TRUE(bitwise_equal(rs, rd));
}

TEST_F(OpsDifferential, SumAllAvx2VariantToleranceGated) {
  FASTCHG_REQUIRE_AVX2();
  for (index_t n : kSizes) {
    auto x = random_vec(rng_, n);
    const double ref = reduce::scalar::sum_all(n, x.data());
    const double vec = reduce::avx2::sum_all(n, x.data());
    EXPECT_NEAR(ref, vec, 1e-4 * (std::fabs(ref) + 1.0))
        << "sum_all n=" << n << " (seed " << kSeed << ")";
  }
}

// ---------------------------------------------------------------------------
// GEMM: tolerance-gated (FMA keeps k-order but skips intermediate rounding)

TEST_F(OpsDifferential, GemmToleranceGated) {
  FASTCHG_REQUIRE_AVX2();
  struct Dim {
    index_t m, k, n;
  };
  // Odd/prime extents exercise the 16-wide, 8-wide and scalar j-tails.
  const Dim dims[] = {{1, 1, 1},  {1, 7, 3},   {3, 13, 17}, {5, 64, 16},
                      {8, 31, 9}, {17, 97, 33}, {2, 8, 1000}};
  for (const Dim& d : dims) {
    auto a = random_vec(rng_, d.m * d.k, -1.0f, 1.0f);
    auto b = random_vec(rng_, d.k * d.n, -1.0f, 1.0f);
    std::vector<float> os(static_cast<std::size_t>(d.m * d.n)),
        ov(static_cast<std::size_t>(d.m * d.n));
    gemm::scalar::matmul(d.m, d.k, d.n, a.data(), b.data(), os.data());
    gemm::avx2::matmul(d.m, d.k, d.n, a.data(), b.data(), ov.data());
    const float tol = 1e-5f * static_cast<float>(d.k);
    for (std::size_t i = 0; i < os.size(); ++i) {
      ASSERT_NEAR(os[i], ov[i], tol)
          << "gemm " << d.m << "x" << d.k << "x" << d.n << " elem " << i
          << " (seed " << kSeed << ")";
    }
  }
}

TEST_F(OpsDifferential, GemmDispatchMatchesTier) {
  // Under a forced scalar tier the dispatching matmul must be bitwise the
  // reference kernel -- this is what FASTCHG_SIMD=scalar CI pins.
  set_simd_tier(Tier::kScalar);
  const index_t m = 7, k = 31, n = 13;
  auto a = random_vec(rng_, m * k);
  auto b = random_vec(rng_, k * n);
  std::vector<float> od(static_cast<std::size_t>(m * n)),
      os(static_cast<std::size_t>(m * n));
  gemm::matmul(m, k, n, a.data(), b.data(), od.data());
  gemm::scalar::matmul(m, k, n, a.data(), b.data(), os.data());
  EXPECT_TRUE(bitwise_equal(od, os));
}

// ---------------------------------------------------------------------------
// Basis: tolerance-gated (Cephes polynomials vs libm)

double test_envelope(double xi, int p) {
  // Same shape as basis/envelope.hpp's smooth cutoff: 1 + a*x^p + b*x^(p+1)
  // + c*x^(p+2) with the standard smooth-cutoff coefficients.
  const double a = -(p + 1.0) * (p + 2.0) / 2.0;
  const double b = p * (p + 2.0);
  const double c = -p * (p + 1.0) / 2.0;
  const double xp = std::pow(xi, p);
  return 1.0 + a * xp + b * xp * xi + c * xp * xi * xi;
}

TEST_F(OpsDifferential, SrbfToleranceGated) {
  FASTCHG_REQUIRE_AVX2();
  for (index_t nb : {index_t{1}, index_t{7}, index_t{8}, index_t{9},
                     index_t{31}}) {
    const index_t e = 23;
    const float rc = 5.0f;
    const float c = std::sqrt(2.0f / rc);
    auto r = random_vec(rng_, e, 0.5f, 4.9f);
    std::vector<float> freq(static_cast<std::size_t>(nb));
    for (index_t i = 0; i < nb; ++i) {
      freq[static_cast<std::size_t>(i)] =
          static_cast<float>(M_PI) * static_cast<float>(i + 1);
    }
    std::vector<float> os(static_cast<std::size_t>(e * nb)),
        ov(static_cast<std::size_t>(e * nb));
    basis::scalar::srbf(e, nb, rc, c, 6, &test_envelope, r.data(), freq.data(),
                        os.data());
    basis::avx2::srbf(e, nb, rc, c, 6, &test_envelope, r.data(), freq.data(),
                      ov.data());
    for (std::size_t i = 0; i < os.size(); ++i) {
      ASSERT_NEAR(os[i], ov[i], 2e-6f)
          << "srbf nb=" << nb << " elem " << i << " (seed " << kSeed << ")";
    }
  }
}

TEST_F(OpsDifferential, FourierToleranceGated) {
  FASTCHG_REQUIRE_AVX2();
  const float c0 = 1.0f / std::sqrt(2.0f * static_cast<float>(M_PI));
  const float cinv = 1.0f / std::sqrt(static_cast<float>(M_PI));
  for (index_t order : {index_t{1}, index_t{3}, index_t{7}, index_t{9}}) {
    const index_t g = 41;
    auto t = random_vec(rng_, g, 0.0f, static_cast<float>(M_PI));
    const index_t nbw = 2 * order + 1;
    std::vector<float> os(static_cast<std::size_t>(g * nbw)),
        ov(static_cast<std::size_t>(g * nbw));
    basis::scalar::fourier(g, order, c0, cinv, t.data(), os.data());
    basis::avx2::fourier(g, order, c0, cinv, t.data(), ov.data());
    for (std::size_t i = 0; i < os.size(); ++i) {
      ASSERT_NEAR(os[i], ov[i], 2e-6f)
          << "fourier order=" << order << " elem " << i << " (seed " << kSeed
          << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Rownorm: tolerance-gated (reassociated mean/var, polynomial exp)

TEST_F(OpsDifferential, LayerNormToleranceGated) {
  FASTCHG_REQUIRE_AVX2();
  for (index_t cols : {index_t{1}, index_t{7}, index_t{16}, index_t{17},
                       index_t{97}}) {
    const index_t rows = 19;
    auto x = random_vec(rng_, rows * cols);
    auto g = random_vec(rng_, cols, 0.5f, 1.5f);
    auto b = random_vec(rng_, cols, -0.5f, 0.5f);
    std::vector<float> os(static_cast<std::size_t>(rows * cols)),
        ov(static_cast<std::size_t>(rows * cols));
    rownorm::scalar::layernorm(rows, cols, 1e-5f, x.data(), g.data(), b.data(),
                               os.data());
    rownorm::avx2::layernorm(rows, cols, 1e-5f, x.data(), g.data(), b.data(),
                             ov.data());
    for (std::size_t i = 0; i < os.size(); ++i) {
      ASSERT_NEAR(os[i], ov[i], 1e-5f)
          << "layernorm cols=" << cols << " elem " << i << " (seed " << kSeed
          << ")";
    }
  }
}

TEST_F(OpsDifferential, GatedActToleranceGated) {
  FASTCHG_REQUIRE_AVX2();
  for (index_t c : {index_t{1}, index_t{7}, index_t{16}, index_t{17},
                    index_t{64}}) {
    const index_t rows = 11;
    auto x = random_vec(rng_, rows * 2 * c);
    auto gc = random_vec(rng_, c, 0.5f, 1.5f);
    auto bc = random_vec(rng_, c, -0.5f, 0.5f);
    auto gg = random_vec(rng_, c, 0.5f, 1.5f);
    auto bg = random_vec(rng_, c, -0.5f, 0.5f);
    std::vector<float> os(static_cast<std::size_t>(rows * c)),
        ov(static_cast<std::size_t>(rows * c));
    rownorm::scalar::gated_act(rows, c, 1e-5f, x.data(), gc.data(), bc.data(),
                               gg.data(), bg.data(), os.data());
    rownorm::avx2::gated_act(rows, c, 1e-5f, x.data(), gc.data(), bc.data(),
                             gg.data(), bg.data(), ov.data());
    for (std::size_t i = 0; i < os.size(); ++i) {
      ASSERT_NEAR(os[i], ov[i], 1e-5f)
          << "gated_act c=" << c << " elem " << i << " (seed " << kSeed << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing

TEST_F(OpsDifferential, TierOverrideClampsToHardware) {
  set_simd_tier(Tier::kScalar);
  EXPECT_EQ(active_tier(), Tier::kScalar);
  set_simd_tier(Tier::kAvx2);
  if (avx2_supported()) {
    EXPECT_EQ(active_tier(), Tier::kAvx2);
  } else {
    // Requesting AVX2 without hardware/build support resolves to scalar
    // instead of crashing on the first kernel.
    EXPECT_EQ(active_tier(), Tier::kScalar);
  }
}

TEST_F(OpsDifferential, DispatchedEltwiseFollowsTier) {
  const index_t n = 1003;
  auto a = random_vec(rng_, n);
  auto b = random_vec(rng_, n);
  std::vector<float> ref(a.size());
  eltwise::scalar::add(n, a.data(), b.data(), ref.data());
  for (Tier t : {Tier::kScalar, Tier::kAvx2}) {
    set_simd_tier(t);
    std::vector<float> o(a.size());
    eltwise::add(n, a.data(), b.data(), o.data());
    // Eltwise is bit-exact, so the dispatched result matches the scalar
    // reference at both tiers -- which is exactly why the serve/replay
    // 0.0-diff gates stay green whichever tier is active.
    EXPECT_TRUE(bitwise_equal(ref, o)) << "tier " << tier_name(t);
  }
}

TEST_F(OpsDifferential, TierNamesStable) {
  EXPECT_STREQ(tier_name(Tier::kScalar), "scalar");
  EXPECT_STREQ(tier_name(Tier::kAvx2), "avx2");
}

}  // namespace
}  // namespace fastchg::ops
