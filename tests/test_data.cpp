// Tests for the data substrate: crystal math, neighbour lists under PBC,
// graph construction, the synthetic-DFT oracle (force/stress consistency
// property tests), the generator's long-tail distribution, and batching.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/batch.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "data/graph.hpp"
#include "data/neighbor.hpp"
#include "data/oracle.hpp"

namespace fastchg::data {
namespace {

Crystal cubic_crystal(double a, const std::vector<Vec3>& frac,
                      const std::vector<index_t>& species) {
  Crystal c;
  c.lattice = {{{a, 0, 0}, {0, a, 0}, {0, 0, a}}};
  c.frac = frac;
  c.species = species;
  return c;
}

// ---------------------------------------------------------------------------
// crystal math
// ---------------------------------------------------------------------------

TEST(CrystalMath, VolumeAndCart) {
  Crystal c = cubic_crystal(4.0, {{0.5, 0.5, 0.5}}, {3});
  EXPECT_DOUBLE_EQ(c.volume(), 64.0);
  const Vec3 r = c.cart()[0];
  EXPECT_DOUBLE_EQ(r[0], 2.0);
}

TEST(CrystalMath, InverseRoundTrip) {
  Mat3 m = {{{3.0, 0.2, 0.1}, {0.0, 2.5, 0.3}, {0.4, 0.0, 4.0}}};
  Mat3 inv = inv3(m);
  Mat3 id = mat_mul(m, inv);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_NEAR(id[i][j], i == j ? 1.0 : 0.0, 1e-12);
}

TEST(CrystalMath, CrossAndDot) {
  Vec3 x{1, 0, 0}, y{0, 1, 0};
  EXPECT_EQ(cross(x, y), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
}

// ---------------------------------------------------------------------------
// neighbour list
// ---------------------------------------------------------------------------

TEST(NeighborList, SimpleCubicCoordination) {
  // Simple cubic, a = 3: each atom has 6 first neighbours at distance 3.
  Crystal c = cubic_crystal(3.0, {{0, 0, 0}}, {11});
  NeighborList nl = build_neighbor_list(c, 3.1);
  EXPECT_EQ(nl.size(), 6);
  for (double d : nl.dist) EXPECT_NEAR(d, 3.0, 1e-9);
}

TEST(NeighborList, SecondShellIncluded) {
  Crystal c = cubic_crystal(3.0, {{0, 0, 0}}, {11});
  // sqrt(2)*3 = 4.243: 6 first + 12 second neighbours.
  NeighborList nl = build_neighbor_list(c, 4.3);
  EXPECT_EQ(nl.size(), 18);
}

TEST(NeighborList, DirectedSymmetry) {
  Rng rng(5);
  Crystal c = random_crystal(rng);
  NeighborList nl = build_neighbor_list(c, 4.0);
  // Every directed edge (i,j,n) must have its reverse (j,i,-n).
  std::multiset<std::tuple<index_t, index_t, int, int, int>> edges;
  for (index_t e = 0; e < nl.size(); ++e) {
    edges.insert({nl.src[e], nl.dst[e], static_cast<int>(nl.image[e][0]),
                  static_cast<int>(nl.image[e][1]),
                  static_cast<int>(nl.image[e][2])});
  }
  for (index_t e = 0; e < nl.size(); ++e) {
    auto rev = std::make_tuple(nl.dst[e], nl.src[e],
                               -static_cast<int>(nl.image[e][0]),
                               -static_cast<int>(nl.image[e][1]),
                               -static_cast<int>(nl.image[e][2]));
    EXPECT_TRUE(edges.count(rev) > 0) << "missing reverse of edge " << e;
  }
}

TEST(NeighborList, SkewedCellImageRange) {
  Mat3 lat = {{{10, 0, 0}, {9, 2, 0}, {0, 0, 10}}};  // strongly sheared
  auto r = image_search_range(lat, 4.0);
  // Plane spacing along b is only 2 A, so >= 2 images are required there.
  EXPECT_GE(r[1], 2);
}

TEST(NeighborList, RijMatchesDist) {
  Rng rng(6);
  Crystal c = random_crystal(rng);
  NeighborList nl = build_neighbor_list(c, 5.0);
  for (index_t e = 0; e < nl.size(); ++e) {
    EXPECT_NEAR(norm(nl.rij[e]), nl.dist[e], 1e-9);
  }
}


TEST(CellList, ApplicabilityRule) {
  Mat3 small = {{{8, 0, 0}, {0, 8, 0}, {0, 0, 8}}};
  Mat3 big = {{{20, 0, 0}, {0, 20, 0}, {0, 0, 20}}};
  EXPECT_FALSE(cell_list_applicable(small, 3.0));
  EXPECT_TRUE(cell_list_applicable(big, 3.0));
  Crystal c = cubic_crystal(8.0, {{0, 0, 0}}, {11});
  EXPECT_THROW(build_neighbor_list_cell(c, 3.0), Error);
}

class CellListEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CellListEquivalence, MatchesBruteForceOnSupercell) {
  Rng rng(GetParam());
  GeneratorConfig gcfg;
  gcfg.min_atoms = 4;
  gcfg.max_atoms = 8;
  Crystal base = random_crystal(rng, gcfg);
  Crystal super = make_supercell(base, 4, 4, 4);  // plenty wide for 3A cells
  const double cutoff = 3.0;
  ASSERT_TRUE(cell_list_applicable(super.lattice, cutoff));
  NeighborList brute = build_neighbor_list(super, cutoff);
  NeighborList cell = build_neighbor_list_cell(super, cutoff);
  ASSERT_EQ(brute.size(), cell.size());
  // Same multiset of directed (src, dst, image) edges.
  auto key_set = [](const NeighborList& nl) {
    std::multiset<std::tuple<index_t, index_t, int, int, int>> keys;
    for (index_t e = 0; e < nl.size(); ++e) {
      keys.insert({nl.src[e], nl.dst[e], static_cast<int>(nl.image[e][0]),
                   static_cast<int>(nl.image[e][1]),
                   static_cast<int>(nl.image[e][2])});
    }
    return keys;
  };
  EXPECT_TRUE(key_set(brute) == key_set(cell));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellListEquivalence,
                         ::testing::Values(71, 72, 73));

TEST(CellList, AutoDispatch) {
  Rng rng(74);
  GeneratorConfig gcfg;
  gcfg.min_atoms = 4;
  gcfg.max_atoms = 6;
  Crystal base = random_crystal(rng, gcfg);
  // Small cell -> brute force path must be taken without throwing.
  NeighborList a = build_neighbor_list_auto(base, 5.0);
  EXPECT_GT(a.size(), 0);
  Crystal super = make_supercell(base, 5, 5, 5);
  NeighborList b = build_neighbor_list_auto(super, 2.5);
  EXPECT_GT(b.size(), 0);
}

// ---------------------------------------------------------------------------
// graph construction
// ---------------------------------------------------------------------------

TEST(Graph, AnglesShareCentralAtomAndAreShort) {
  Rng rng(7);
  Crystal c = random_crystal(rng);
  GraphConfig cfg;
  GraphData g = build_graph(c, cfg);
  for (std::size_t a = 0; a < g.angle_e1.size(); ++a) {
    const auto e1 = static_cast<std::size_t>(g.angle_e1[a]);
    const auto e2 = static_cast<std::size_t>(g.angle_e2[a]);
    EXPECT_EQ(g.edge_src[e1], g.edge_src[e2]);
    EXPECT_NE(g.angle_e1[a], g.angle_e2[a]);
    EXPECT_LE(g.edge_dist[e1], cfg.bond_cutoff);
    EXPECT_LE(g.edge_dist[e2], cfg.bond_cutoff);
  }
}

TEST(Graph, AngleCountMatchesDegreeFormula) {
  Rng rng(8);
  Crystal c = random_crystal(rng);
  GraphData g = build_graph(c, {});
  std::vector<index_t> deg(static_cast<std::size_t>(g.num_atoms), 0);
  for (index_t e : g.short_edges) {
    deg[static_cast<std::size_t>(g.edge_src[static_cast<std::size_t>(e)])]++;
  }
  index_t expect = 0;
  for (index_t d : deg) expect += d * (d - 1);
  EXPECT_EQ(g.num_angles(), expect);
}

TEST(Graph, FeatureNumberSums) {
  Rng rng(9);
  Crystal c = random_crystal(rng);
  GraphData g = build_graph(c, {});
  EXPECT_EQ(g.feature_number(),
            g.num_atoms + g.num_edges() + g.num_angles());
}

// ---------------------------------------------------------------------------
// oracle: energy/force/stress consistency (property tests)
// ---------------------------------------------------------------------------

class OracleConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleConsistency, ForcesMatchFiniteDifference) {
  Rng rng(GetParam());
  GeneratorConfig gcfg;
  gcfg.min_atoms = 4;
  gcfg.max_atoms = 8;
  Crystal c = random_crystal(rng, gcfg);
  Oracle oracle;
  auto res = oracle.evaluate(c);
  const Mat3 lat_inv = inv3(c.lattice);
  const double h = 1e-5;
  for (index_t atom = 0; atom < std::min<index_t>(c.natoms(), 3); ++atom) {
    for (int d = 0; d < 3; ++d) {
      // displace atom in cartesian direction d by +-h
      Vec3 dr{};
      dr[d] = h;
      const Vec3 df = mat_vec(lat_inv, dr);
      Crystal cp = c, cm = c;
      for (int k = 0; k < 3; ++k) {
        cp.frac[static_cast<std::size_t>(atom)][k] += df[k];
        cm.frac[static_cast<std::size_t>(atom)][k] -= df[k];
      }
      const double fd =
          -(oracle.energy_only(cp) - oracle.energy_only(cm)) / (2 * h);
      EXPECT_NEAR(res.forces[static_cast<std::size_t>(atom)][d], fd, 1e-4)
          << "atom " << atom << " dir " << d;
    }
  }
}

TEST_P(OracleConsistency, StressMatchesStrainDerivative) {
  Rng rng(GetParam() + 100);
  GeneratorConfig gcfg;
  gcfg.min_atoms = 4;
  gcfg.max_atoms = 8;
  Crystal c = random_crystal(rng, gcfg);
  Oracle oracle;
  auto res = oracle.evaluate(c);
  const double vol = c.volume();
  const double h = 1e-5;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      auto strained = [&](double eps) {
        Mat3 defo = {{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}};
        defo[a][b] += eps;
        Crystal cs = c;
        cs.lattice = mat_mul(c.lattice, defo);
        return oracle.energy_only(cs);
      };
      const double fd = (strained(h) - strained(-h)) / (2 * h) / vol;
      EXPECT_NEAR(res.stress[a][b], fd, 1e-5) << "component " << a << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleConsistency,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Oracle, TranslationInvariance) {
  Rng rng(12);
  Crystal c = random_crystal(rng);
  Oracle oracle;
  const double e0 = oracle.energy_only(c);
  Crystal shifted = c;
  for (auto& f : shifted.frac) {
    f[0] += 0.31;
    f[1] += 0.17;
    f[2] += 0.53;
  }
  EXPECT_NEAR(oracle.energy_only(shifted), e0, 1e-9);
}

TEST(Oracle, ForcesSumToZero) {
  Rng rng(13);
  Crystal c = random_crystal(rng);
  Oracle oracle;
  auto res = oracle.evaluate(c);
  Vec3 total{};
  for (const Vec3& f : res.forces) {
    for (int d = 0; d < 3; ++d) total[d] += f[d];
  }
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(total[d], 0.0, 1e-9);
}

TEST(Oracle, StressIsSymmetric) {
  Rng rng(14);
  Crystal c = random_crystal(rng);
  Oracle oracle;
  auto res = oracle.evaluate(c);
  for (int a = 0; a < 3; ++a)
    for (int b = a + 1; b < 3; ++b)
      EXPECT_NEAR(res.stress[a][b], res.stress[b][a], 1e-9);
}

TEST(Oracle, MagmomInRange) {
  Rng rng(15);
  Crystal c = random_crystal(rng);
  Oracle oracle;
  auto res = oracle.evaluate(c);
  for (double m : res.magmom) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 2.0);
  }
}

TEST(Oracle, SpeciesParamsDeterministicAndBounded) {
  for (index_t z = 1; z <= 89; ++z) {
    SpeciesParams a = species_params(z), b = species_params(z);
    EXPECT_EQ(a.r0, b.r0);
    EXPECT_GT(a.d, 0.0);
    EXPECT_GT(a.r0, 1.0);
    EXPECT_LT(a.r0, 3.0);
  }
}

// ---------------------------------------------------------------------------
// generator
// ---------------------------------------------------------------------------

TEST(Generator, RespectsAtomBounds) {
  Rng rng(16);
  GeneratorConfig cfg;
  for (int i = 0; i < 50; ++i) {
    Crystal c = random_crystal(rng, cfg);
    EXPECT_GE(c.natoms(), cfg.min_atoms);
    EXPECT_LE(c.natoms(), cfg.max_atoms);
    EXPECT_EQ(c.species.size(), c.frac.size());
    for (index_t z : c.species) {
      EXPECT_GE(z, 1);
      EXPECT_LE(z, cfg.num_species);
    }
  }
}

TEST(Generator, LongTailDistribution) {
  Rng rng(17);
  std::vector<index_t> counts;
  for (int i = 0; i < 400; ++i) {
    counts.push_back(random_crystal(rng).natoms());
  }
  double mean = 0;
  for (index_t n : counts) mean += static_cast<double>(n);
  mean /= static_cast<double>(counts.size());
  index_t above_2x = 0;
  for (index_t n : counts) {
    if (static_cast<double>(n) > 2 * mean) above_2x++;
  }
  // Long tail: a visible fraction of samples sits far above the mean, but
  // the median stays below it.
  EXPECT_GT(above_2x, 10);
  std::sort(counts.begin(), counts.end());
  EXPECT_LT(static_cast<double>(counts[counts.size() / 2]), mean + 1);
}

TEST(Generator, ReferenceStructuresStoichiometry) {
  Crystal limn = make_reference_structure("LiMnO2");
  EXPECT_EQ(limn.natoms(), 8);
  Crystal litipo = make_reference_structure("LiTiPO5");
  EXPECT_EQ(litipo.natoms(), 32);
  Crystal lico = make_reference_structure("Li9Co7O16");
  EXPECT_EQ(lico.natoms(), 32);
  // Table II ordering: feature numbers strictly increasing.
  GraphData g1 = build_graph(limn, {});
  GraphData g2 = build_graph(litipo, {});
  GraphData g3 = build_graph(lico, {});
  EXPECT_LT(g1.feature_number(), g2.feature_number());
  EXPECT_LT(g2.feature_number(), g3.feature_number());
  EXPECT_THROW(make_reference_structure("bogus"), Error);
}

// ---------------------------------------------------------------------------
// dataset + batching
// ---------------------------------------------------------------------------

TEST(Dataset, GenerateAndSplitFractions) {
  Dataset ds = Dataset::generate(40, 123);
  EXPECT_EQ(ds.size(), 40);
  auto split = ds.split(0.05, 0.05, 7);
  EXPECT_EQ(split.val.size(), 2u);
  EXPECT_EQ(split.test.size(), 2u);
  EXPECT_EQ(split.train.size(), 36u);
  // Disjoint and complete.
  std::set<index_t> all;
  for (auto& v : {split.train, split.val, split.test})
    for (index_t i : v) all.insert(i);
  EXPECT_EQ(all.size(), 40u);
}

TEST(Dataset, LabelsPopulated) {
  Dataset ds = Dataset::generate(5, 9);
  for (index_t i = 0; i < ds.size(); ++i) {
    const Crystal& c = ds[i].crystal;
    EXPECT_NE(c.energy, 0.0);
    EXPECT_EQ(c.forces.size(), c.frac.size());
    EXPECT_EQ(c.magmom.size(), c.frac.size());
  }
}

TEST(Dataset, DistributionStats) {
  Dataset ds = Dataset::generate(60, 10);
  auto st = ds.distribution(10);
  EXPECT_GT(st.mean_bonds, st.mean_atoms);
  EXPECT_GT(st.mean_angles, 0.0);
  index_t total = 0;
  for (index_t c : st.atoms.counts) total += c;
  EXPECT_EQ(total, 60);
}

TEST(Batch, OffsetsAndSizes) {
  Dataset ds = Dataset::generate(6, 11);
  Batch b = collate_indices(ds, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(b.num_structs, 6);
  index_t atoms = 0, edges = 0, angles = 0;
  for (index_t i = 0; i < 6; ++i) {
    atoms += ds[i].graph.num_atoms;
    edges += ds[i].graph.num_edges();
    angles += ds[i].graph.num_angles();
  }
  EXPECT_EQ(b.num_atoms, atoms);
  EXPECT_EQ(b.num_edges, edges);
  EXPECT_EQ(b.num_angles, angles);
  EXPECT_EQ(b.cart.shape(), (Shape{atoms, 3}));
  EXPECT_EQ(b.stress.shape(), (Shape{6, 9}));
  // Edge indices in range and pointing to the owning structure's atoms.
  for (index_t e = 0; e < b.num_edges; ++e) {
    const index_t s = b.edge_struct[static_cast<std::size_t>(e)];
    EXPECT_GE(b.edge_src[static_cast<std::size_t>(e)], b.atom_first[s]);
    EXPECT_LT(b.edge_src[static_cast<std::size_t>(e)], b.atom_first[s + 1]);
  }
  // Angle edge indices live inside the owning structure's edge range.
  for (std::size_t a = 0; a < b.angle_e1.size(); ++a) {
    EXPECT_LT(b.angle_e1[a], b.num_edges);
    EXPECT_LT(b.angle_e2[a], b.num_edges);
  }
}

TEST(Batch, BlockDiagonalImageMatrix) {
  Dataset ds = Dataset::generate(3, 12);
  Batch b = collate_indices(ds, {0, 1, 2});
  EXPECT_EQ(b.image_blockdiag.shape(), (Shape{b.num_edges, 9}));
  // Nonzero entries only inside the owning structure's 3-column block.
  const float* p = b.image_blockdiag.data();
  for (index_t e = 0; e < b.num_edges; ++e) {
    const index_t s = b.edge_struct[static_cast<std::size_t>(e)];
    for (index_t col = 0; col < 9; ++col) {
      if (col < 3 * s || col >= 3 * s + 3) {
        EXPECT_EQ(p[e * 9 + col], 0.0f);
      }
    }
    // The in-block entries equal the edge image.
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(p[e * 9 + 3 * s + d], b.edge_image.data()[e * 3 + d]);
    }
  }
}

TEST(Batch, EnergyPerAtomLabel) {
  Dataset ds = Dataset::generate(2, 13);
  Batch b = collate_indices(ds, {0, 1});
  for (index_t s = 0; s < 2; ++s) {
    const double expect =
        ds[s].crystal.energy / static_cast<double>(ds[s].crystal.natoms());
    EXPECT_NEAR(b.energy_per_atom.data()[s], expect, 1e-5);
  }
}

}  // namespace
}  // namespace fastchg::data
