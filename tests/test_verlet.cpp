// Tests for the Verlet (skin-buffered) neighbour cache: exact graph
// equivalence with fresh rebuilds along an MD-like random walk, rebuild
// accounting, image re-basing across periodic wraps, and end-to-end MD
// trajectory agreement.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "data/verlet.hpp"
#include "md/md.hpp"

namespace fastchg::data {
namespace {

using EdgeKey = std::tuple<index_t, index_t, int, int, int>;

std::multiset<EdgeKey> edge_set(const GraphData& g) {
  std::multiset<EdgeKey> keys;
  for (index_t e = 0; e < g.num_edges(); ++e) {
    const auto se = static_cast<std::size_t>(e);
    keys.insert({g.edge_src[se], g.edge_dst[se],
                 static_cast<int>(g.edge_image[se][0]),
                 static_cast<int>(g.edge_image[se][1]),
                 static_cast<int>(g.edge_image[se][2])});
  }
  return keys;
}

Crystal walk_start(std::uint64_t seed) {
  Rng rng(seed);
  GeneratorConfig g;
  g.min_atoms = 5;
  g.max_atoms = 8;
  return random_crystal(rng, g);
}

/// Jitter every atom by up to `amp` A (cartesian), wrapping fracs.
void jitter(Crystal& c, Rng& rng, double amp) {
  const Mat3 inv = inv3(c.lattice);
  for (auto& f : c.frac) {
    Vec3 dr{rng.uniform(-amp, amp), rng.uniform(-amp, amp),
            rng.uniform(-amp, amp)};
    const Vec3 df = mat_vec(inv, dr);
    for (int d = 0; d < 3; ++d) {
      f[d] += df[d];
      f[d] -= std::floor(f[d]);
    }
  }
}

class VerletWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerletWalk, MatchesFreshGraphAtEveryStep) {
  Crystal c = walk_start(GetParam());
  GraphConfig cfg;
  cfg.atom_cutoff = 5.0;
  cfg.bond_cutoff = 2.5;
  VerletList vl(cfg, /*skin=*/0.8);
  Rng rng(GetParam() + 7);
  for (int step = 0; step < 12; ++step) {
    GraphData cached = vl.graph(c);
    GraphData fresh = build_graph(c, cfg);
    ASSERT_EQ(cached.num_edges(), fresh.num_edges()) << "step " << step;
    EXPECT_TRUE(edge_set(cached) == edge_set(fresh)) << "step " << step;
    EXPECT_EQ(cached.num_angles(), fresh.num_angles()) << "step " << step;
    jitter(c, rng, 0.05);
  }
  // With 0.05 A steps and a 0.8 A skin, most queries reuse the cache.
  EXPECT_LT(vl.rebuilds(), vl.queries() / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerletWalk, ::testing::Values(61, 62, 63));

TEST(Verlet, LargeMoveTriggersRebuild) {
  Crystal c = walk_start(64);
  GraphConfig cfg;
  VerletList vl(cfg, 0.6);
  (void)vl.graph(c);
  EXPECT_EQ(vl.rebuilds(), 1);
  (void)vl.graph(c);  // unchanged: cache hit
  EXPECT_EQ(vl.rebuilds(), 1);
  c.frac[0][0] += 0.5;  // far beyond skin/2
  (void)vl.graph(c);
  EXPECT_EQ(vl.rebuilds(), 2);
}

TEST(Verlet, HandlesPeriodicWrapBetweenQueries) {
  // An atom drifting across the cell boundary changes its wrapped image;
  // the cached edges must be re-based and still match a fresh build.
  Crystal c = walk_start(65);
  c.frac[0] = {0.995, 0.5, 0.5};
  GraphConfig cfg;
  VerletList vl(cfg, 1.0);
  (void)vl.graph(c);
  c.frac[0][0] = 1.003;  // wraps to 0.003; drift is only ~0.05 A
  GraphData cached = vl.graph(c);
  GraphData fresh = build_graph(c, cfg);
  EXPECT_TRUE(edge_set(cached) == edge_set(fresh));
}

TEST(Verlet, ZeroSkinRejected) {
  EXPECT_THROW(VerletList({}, 0.0), Error);
}

TEST(VerletMD, TrajectoryMatchesFullRebuild) {
  model::ModelConfig mcfg = model::ModelConfig::fast_no_head();
  mcfg.feat_dim = 8;
  mcfg.num_radial = 5;
  mcfg.num_angular = 5;
  mcfg.num_layers = 1;
  model::CHGNet net(mcfg, 66);
  Crystal start = walk_start(67);

  md::MDConfig base;
  base.dt_fs = 0.25;
  base.init_temperature_k = 200.0;
  md::MDConfig cached = base;
  cached.verlet_skin = 1.0;

  md::MDSimulator a(net, start, base);
  md::MDSimulator b(net, start, cached);
  for (int blockstep = 0; blockstep < 3; ++blockstep) {
    a.step(5);
    b.step(5);
    EXPECT_NEAR(a.potential_energy(), b.potential_energy(),
                1e-3 * std::max(1.0, std::fabs(a.potential_energy())))
        << "after " << a.steps_taken() << " steps";
  }
}

}  // namespace
}  // namespace fastchg::data
