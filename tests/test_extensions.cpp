// Tests for the extension features: checkpoint save/load, the threaded
// prefetch loader, gradient bucketing, int8 inference quantization, and the
// perf timing utilities.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "fastchgnet.hpp"
#include "fastchgnet/quantize.hpp"
#include "nn/serialize.hpp"
#include "parallel/bucketing.hpp"
#include "data/dataset_io.hpp"
#include "data/prefetch.hpp"
#include "perf/timer.hpp"
#include "train/metrics.hpp"

namespace fastchg {
namespace {

model::ModelConfig tiny_cfg() {
  model::ModelConfig cfg = model::ModelConfig::fast();
  cfg.feat_dim = 8;
  cfg.num_radial = 5;
  cfg.num_angular = 5;
  cfg.num_layers = 1;
  return cfg;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTripRestoresExactWeights) {
  model::CHGNet a(tiny_cfg(), 1), b(tiny_cfg(), 2);
  const std::string path = temp_path("fastchg_ckpt_roundtrip.bin");
  nn::save_parameters(a, path);
  nn::load_parameters(b, path);
  auto pa = a.named_parameters();
  auto pb = b.named_parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].second.value().to_vector(),
              pb[i].second.value().to_vector())
        << pa[i].first;
  }
  std::filesystem::remove(path);
}

TEST(Serialize, PredictionsSurviveRoundTrip) {
  data::Dataset ds = data::Dataset::generate(2, 3);
  data::Batch batch = data::collate_indices(ds, {0, 1});
  model::CHGNet a(tiny_cfg(), 4), b(tiny_cfg(), 5);
  const std::string path = temp_path("fastchg_ckpt_pred.bin");
  nn::save_parameters(a, path);
  nn::load_parameters(b, path);
  auto oa = a.forward(batch, model::ForwardMode::kEval);
  auto ob = b.forward(batch, model::ForwardMode::kEval);
  EXPECT_EQ(oa.energy_per_atom.value().to_vector(),
            ob.energy_per_atom.value().to_vector());
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsStructuralMismatch) {
  model::CHGNet a(tiny_cfg(), 6);
  model::ModelConfig other = tiny_cfg();
  other.feat_dim = 12;
  model::CHGNet b(other, 7);
  const std::string path = temp_path("fastchg_ckpt_mismatch.bin");
  nn::save_parameters(a, path);
  EXPECT_THROW(nn::load_parameters(b, path), Error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = temp_path("fastchg_ckpt_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  model::CHGNet a(tiny_cfg(), 8);
  EXPECT_THROW(nn::load_parameters(a, path), Error);
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileThrows) {
  model::CHGNet a(tiny_cfg(), 9);
  EXPECT_THROW(nn::load_parameters(a, "/nonexistent/dir/ckpt.bin"), Error);
}


// ---------------------------------------------------------------------------
// dataset caching
// ---------------------------------------------------------------------------

TEST(DatasetIo, RoundTripPreservesLabelsAndGraphs) {
  data::Dataset ds = data::Dataset::generate(6, 77);
  const std::string path = temp_path("fastchg_dataset.bin");
  data::save_dataset(ds, path);
  data::Dataset loaded = data::load_dataset(path);
  ASSERT_EQ(loaded.size(), ds.size());
  for (index_t i = 0; i < ds.size(); ++i) {
    const data::Crystal& a = ds[i].crystal;
    const data::Crystal& b = loaded[i].crystal;
    EXPECT_EQ(a.species, b.species);
    EXPECT_DOUBLE_EQ(a.energy, b.energy);
    for (index_t atom = 0; atom < a.natoms(); ++atom) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_DOUBLE_EQ(a.frac[atom][d], b.frac[atom][d]);
        EXPECT_DOUBLE_EQ(a.forces[atom][d], b.forces[atom][d]);
      }
    }
    // Graphs rebuilt deterministically.
    EXPECT_EQ(ds[i].graph.num_edges(), loaded[i].graph.num_edges());
    EXPECT_EQ(ds[i].graph.num_angles(), loaded[i].graph.num_angles());
  }
  EXPECT_DOUBLE_EQ(loaded.graph_config().atom_cutoff,
                   ds.graph_config().atom_cutoff);
  std::filesystem::remove(path);
}

TEST(DatasetIo, RejectsGarbage) {
  const std::string path = temp_path("fastchg_dataset_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("junk", f);
    std::fclose(f);
  }
  EXPECT_THROW(data::load_dataset(path), Error);
  std::filesystem::remove(path);
  EXPECT_THROW(data::load_dataset("/no/such/file.bin"), Error);
}

TEST(DatasetIo, TrainingOnLoadedDatasetMatches) {
  data::Dataset ds = data::Dataset::generate(8, 78);
  const std::string path = temp_path("fastchg_dataset_train.bin");
  data::save_dataset(ds, path);
  data::Dataset loaded = data::load_dataset(path);
  data::Batch a = data::collate_indices(ds, {0, 1, 2, 3});
  data::Batch b = data::collate_indices(loaded, {0, 1, 2, 3});
  EXPECT_EQ(a.cart.to_vector(), b.cart.to_vector());
  EXPECT_EQ(a.energy_per_atom.to_vector(), b.energy_per_atom.to_vector());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// prefetch
// ---------------------------------------------------------------------------

TEST(Prefetch, DeliversAllBatchesInOrder) {
  data::Dataset ds = data::Dataset::generate(12, 10);
  std::vector<std::vector<index_t>> plan = {
      {0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}};
  data::PrefetchLoader loader(ds, plan, /*depth=*/2);
  std::size_t count = 0;
  while (auto b = loader.next()) {
    // Batch i must contain exactly plan[i]'s structures.
    EXPECT_EQ(b->num_structs, 3);
    index_t atoms = 0;
    for (index_t row : plan[count]) atoms += ds[row].graph.num_atoms;
    EXPECT_EQ(b->num_atoms, atoms);
    ++count;
  }
  EXPECT_EQ(count, plan.size());
  EXPECT_FALSE(loader.next().has_value());  // exhausted stays exhausted
}

TEST(Prefetch, EmptyPlanTerminatesImmediately) {
  data::Dataset ds = data::Dataset::generate(2, 11);
  data::PrefetchLoader loader(ds, {}, 2);
  EXPECT_FALSE(loader.next().has_value());
}

TEST(Prefetch, EarlyDestructionDoesNotHang) {
  data::Dataset ds = data::Dataset::generate(16, 12);
  std::vector<std::vector<index_t>> plan;
  for (index_t i = 0; i < 16; ++i) plan.push_back({i});
  {
    data::PrefetchLoader loader(ds, plan, 1);
    (void)loader.next();  // consume one, drop the rest
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// bucketing
// ---------------------------------------------------------------------------

TEST(Bucketing, CoversEveryParameterOnce) {
  model::CHGNet net(tiny_cfg(), 13);
  auto params = net.parameters();
  auto buckets = parallel::make_gradient_buckets(params, 4096);
  std::vector<int> seen(params.size(), 0);
  std::uint64_t total = 0;
  for (const auto& b : buckets) {
    for (std::size_t k : b.param_indices) seen[k]++;
    total += b.bytes;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
  EXPECT_EQ(total, tensor_bytes(net.num_parameters()));
}

TEST(Bucketing, RespectsTargetBytes) {
  model::CHGNet net(tiny_cfg(), 14);
  auto params = net.parameters();
  const std::uint64_t target = 2048;
  auto buckets = parallel::make_gradient_buckets(params, target);
  for (const auto& b : buckets) {
    if (b.param_indices.size() > 1) {
      EXPECT_LE(b.bytes, target);
    }
  }
  // Smaller targets mean at least as many buckets.
  auto coarse = parallel::make_gradient_buckets(params, 1 << 20);
  EXPECT_LE(coarse.size(), buckets.size());
}

TEST(Bucketing, ZeroTargetThrows) {
  model::CHGNet net(tiny_cfg(), 15);
  EXPECT_THROW(parallel::make_gradient_buckets(net.parameters(), 0), Error);
}

// ---------------------------------------------------------------------------
// quantization
// ---------------------------------------------------------------------------

TEST(Quantize, TensorRoundTripBounds) {
  Tensor t = Tensor::from_vector({0.5f, -1.0f, 0.01f, 1.0f}, {4});
  float scale = 0.0f;
  auto codes = model::quantize_tensor(t, scale);
  EXPECT_EQ(codes.size(), 4u);
  EXPECT_NEAR(scale, 1.0f / 127.0f, 1e-6f);
  // Quantization error bounded by scale/2 per element.
  EXPECT_NEAR(t.to_vector()[0], 0.5f, scale);
  EXPECT_FLOAT_EQ(t.to_vector()[1], -1.0f);  // extremes are exact
  EXPECT_FLOAT_EQ(t.to_vector()[3], 1.0f);
}

TEST(Quantize, ZeroTensorIsStable) {
  Tensor t = Tensor::zeros({8});
  float scale = 0.0f;
  auto codes = model::quantize_tensor(t, scale);
  for (auto c : codes) EXPECT_EQ(c, 0);
  for (float v : t.to_vector()) EXPECT_EQ(v, 0.0f);
}

TEST(Quantize, ModelReportAndBoundedAccuracyLoss) {
  data::Dataset ds = data::Dataset::generate(8, 16);
  std::vector<index_t> rows{0, 1, 2, 3, 4, 5, 6, 7};
  model::CHGNet net(tiny_cfg(), 17);
  train::EvalMetrics before = train::evaluate_model(net, ds, rows, 4);
  model::QuantizationReport rep = model::quantize_for_inference(net);
  train::EvalMetrics after = train::evaluate_model(net, ds, rows, 4);
  EXPECT_EQ(rep.elements, net.num_parameters());
  EXPECT_GT(rep.tensors, 10);
  EXPECT_LT(rep.int8_bytes, rep.fp32_bytes / 3.5);  // ~4x compression
  EXPECT_GT(rep.max_abs_error, 0.0);
  // int8 weights perturb predictions but must not blow them up.
  EXPECT_LT(after.energy_mae_mev_atom,
            5.0 * before.energy_mae_mev_atom + 100.0);
}

// ---------------------------------------------------------------------------
// perf utilities
// ---------------------------------------------------------------------------

TEST(PerfTimer, TimingStatsMoments) {
  perf::TimingStats st;
  st.add(1.0);
  st.add(2.0);
  st.add(3.0);
  EXPECT_EQ(st.count(), 3u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.0);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 3.0);
  EXPECT_NEAR(st.stddev(), 1.0, 1e-12);
  EXPECT_NEAR(st.cov(), 0.5, 1e-12);
}

TEST(PerfTimer, FormatSecondsRanges) {
  EXPECT_EQ(perf::format_seconds(2.5e-6), "2.5 us");
  EXPECT_EQ(perf::format_seconds(1.5e-2), "15.00 ms");
  EXPECT_EQ(perf::format_seconds(2.0), "2.000 s");
}

TEST(PerfTimer, MonotoneElapsed) {
  perf::Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace fastchg
