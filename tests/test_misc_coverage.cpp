// Coverage for corners not exercised elsewhere: sum_to/broadcast helper
// behaviour, 1-D concat, StressHead's lattice outer-product identity,
// module registry misuse, Berendsen clamp behaviour, charge-inference
// determinism, and Batch label fallbacks.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.hpp"
#include "chgnet/charge.hpp"
#include "data/batch.hpp"
#include "fastchgnet/heads.hpp"
#include "md/md.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace fastchg {
namespace {

using namespace ag::ops;
using ag::Var;

// ---------------------------------------------------------------------------
// broadcast helpers
// ---------------------------------------------------------------------------

TEST(SumTo, AllSupportedTargets) {
  Var x(Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3}), false);
  EXPECT_FLOAT_EQ(sum_to(x, {1}).item(), 21.0f);
  EXPECT_EQ(sum_to(x, {3}).value().to_vector(),
            (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(sum_to(x, {1, 3}).value().to_vector(),
            (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(sum_to(x, {2, 1}).value().to_vector(),
            (std::vector<float>{6, 15}));
  // Same shape: identity (no copy).
  Var same = sum_to(x, {2, 3});
  EXPECT_TRUE(same.value().shares_storage(x.value()));
}

TEST(SumTo, UnsupportedTargetThrows) {
  Var x(Tensor::zeros({4, 3}), false);
  EXPECT_THROW(sum_to(x, {2, 3}), Error);
}

TEST(BroadcastTo, UnsupportedShapeThrows) {
  Var x(Tensor::zeros({2, 2}), false);
  EXPECT_THROW(broadcast_to(x, {4, 4}), Error);
}

TEST(Cat, OneDimensionalPath) {
  Var a(Tensor::from_vector({1, 2}, {2}), false);
  Var b(Tensor::from_vector({3}, {1}), false);
  Var c = cat({a, b}, 0);
  EXPECT_EQ(c.value().to_vector(), (std::vector<float>{1, 2, 3}));
  EXPECT_THROW(cat({a, b}, 1), Error);  // 1-D tensors only concat on dim 0
}

TEST(Cat, SingleInputPassthrough) {
  Var a(Tensor::from_vector({1, 2}, {2}), false);
  Var c = cat({a}, 0);
  EXPECT_TRUE(c.value().shares_storage(a.value()));
}

// ---------------------------------------------------------------------------
// stress head geometry
// ---------------------------------------------------------------------------

TEST(StressHead, LatticeOuterCubicIdentity) {
  // For a cubic lattice the normalized rows are the unit vectors, so
  // sum_{ij} e_i (x) e_j is the all-ones 3x3 matrix, independent of a.
  Tensor lat = Tensor::zeros({3, 3});
  lat.data()[0] = 5.0f;
  lat.data()[4] = 5.0f;
  lat.data()[8] = 5.0f;
  Tensor outer = model::StressHead::lattice_outer(lat);
  for (index_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(outer.data()[i], 1.0f, 1e-6f);
  }
}

TEST(StressHead, LatticeOuterScaleInvariant) {
  Rng rng(3);
  Tensor lat = Tensor::empty({3, 3});
  rng.fill_uniform(lat, 1.0f, 5.0f);
  Tensor a = model::StressHead::lattice_outer(lat);
  Tensor lat2 = lat.clone();
  lat2.mul_(3.0f);  // normalization removes the overall scale
  Tensor b = model::StressHead::lattice_outer(lat2);
  for (index_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-5f);
  }
}

// ---------------------------------------------------------------------------
// module registry misuse
// ---------------------------------------------------------------------------

class BadModule : public nn::Module {
 public:
  void poke() { add_child("nothing", nullptr); }
};

TEST(Module, NullChildThrows) {
  BadModule m;
  EXPECT_THROW(m.poke(), Error);
}

TEST(Module, CopyParametersCountMismatchThrows) {
  Rng rng(1);
  nn::Linear a(3, 2, rng);
  nn::Linear b(3, 2, rng, /*bias=*/false);
  EXPECT_THROW(b.copy_parameters_from(a), Error);
}

// ---------------------------------------------------------------------------
// thermostat clamp + mass model
// ---------------------------------------------------------------------------

TEST(AtomicMass, MonotoneBeyondHydrogen) {
  for (index_t z = 2; z < 89; ++z) {
    EXPECT_GT(md::atomic_mass(z + 1), md::atomic_mass(z));
  }
}

// ---------------------------------------------------------------------------
// charge inference determinism
// ---------------------------------------------------------------------------

TEST(ChargeInference, Deterministic) {
  Rng rng(8);
  std::vector<index_t> species;
  std::vector<double> magmoms;
  for (int i = 0; i < 20; ++i) {
    species.push_back(rng.randint(1, 89));
    magmoms.push_back(rng.uniform(0.0, 2.0));
  }
  auto a = model::infer_charges(species, magmoms);
  auto b = model::infer_charges(species, magmoms);
  EXPECT_EQ(a.oxidation, b.oxidation);
  EXPECT_EQ(a.total_charge, b.total_charge);
  EXPECT_DOUBLE_EQ(a.penalty, b.penalty);
}

// ---------------------------------------------------------------------------
// batch label fallbacks
// ---------------------------------------------------------------------------

TEST(Batch, UnlabelledCrystalsGetZeroLabels) {
  Rng rng(9);
  data::GeneratorConfig g;
  g.min_atoms = 3;
  g.max_atoms = 5;
  data::Crystal c = data::random_crystal(rng, g);  // no labels
  data::Dataset ds = data::Dataset::from_crystals({c}, {}, {},
                                                  /*relabel=*/false);
  data::Batch b = data::collate_indices(ds, {0});
  for (float v : b.forces.to_vector()) EXPECT_EQ(v, 0.0f);
  for (float v : b.magmom.to_vector()) EXPECT_EQ(v, 0.0f);
}

TEST(Batch, EmptyBatchThrows) {
  EXPECT_THROW(data::collate({}), Error);
}

}  // namespace
}  // namespace fastchg
