// Battery for the sharded serving front-end (serve/router.hpp,
// serve/shard.hpp):
//
//   * fingerprint-affinity routing: sticky, deterministic, and spread
//     across shards; consistent-hash remap moves ~1/N of the key space on
//     elastic resizes and is exactly undone by the inverse resize;
//   * shard fault isolation: a tripped shard's backlog fails over to
//     siblings with bit-identical replies (flagged rerouted), the shard
//     restarts with a cold cache and rejoins through the documented health
//     state machine;
//   * determinism: identical seeds + fault plans reproduce identical shard
//     assignments, reroute counts and bit-identical predictions across
//     runs, and predictions agree bit-for-bit across shard counts;
//   * global load shedding and the all-shards-down path stay typed
//     (kOverloaded / kDegraded under strict routing), never crash;
//   * fleet counter reconciliation: cache lookups == hits + misses across
//     any number of shard restarts and elastic resizes;
//   * per-shard arenas: sharded serving recycles through shard-local pools
//     (steady state stops missing to the upstream allocator) and the
//     watermark trim returns burst slabs between ticks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "data/generator.hpp"
#include "parallel/fault.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "serve/struct_cache.hpp"

namespace fastchg::serve {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.feat_dim = 12;
  cfg.num_radial = 7;
  cfg.num_angular = 7;
  cfg.num_layers = 2;
  cfg.batched_basis = true;
  cfg.fused_kernels = true;
  cfg.factored_envelope = true;
  cfg.decoupled_heads = true;
  return cfg;
}

data::Crystal seeded_crystal(std::uint64_t seed, index_t min_atoms = 2,
                             index_t max_atoms = 8) {
  Rng rng(seed);
  data::GeneratorConfig g;
  g.min_atoms = min_atoms;
  g.max_atoms = max_atoms;
  return data::random_crystal(rng, g);
}

RouterConfig base_config(int shards) {
  RouterConfig rc;
  rc.num_shards = shards;
  rc.shard.engine.max_batch = 4;
  rc.shard.engine.queue_capacity = 64;
  rc.shard.engine.cache_capacity = 32;
  rc.shed_watermark = 1u << 20;  // effectively off unless a test lowers it
  return rc;
}

/// Bit-identical reply check: deterministic forwards make a fused /
/// rerouted / cache-replayed reply byte-equal to the single-engine answer,
/// so exact double equality is the contract, not a tolerance.
void expect_bitwise(const Prediction& got, const Prediction& want,
                    const std::string& what) {
  EXPECT_EQ(got.energy, want.energy) << what;
  ASSERT_EQ(got.forces.size(), want.forces.size()) << what;
  for (std::size_t i = 0; i < want.forces.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(got.forces[i][d], want.forces[i][d])
          << what << " force[" << i << "][" << d << "]";
    }
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(got.stress[i][j], want.stress[i][j])
          << what << " stress[" << i << "][" << j << "]";
    }
  }
  ASSERT_EQ(got.magmom.size(), want.magmom.size()) << what;
  for (std::size_t i = 0; i < want.magmom.size(); ++i) {
    EXPECT_EQ(got.magmom[i], want.magmom[i]) << what << " magmom[" << i << "]";
  }
}

/// First seed >= `from` whose crystal's affinity shard is `target`.
std::uint64_t seed_with_affinity(const ShardRouter& router, int target,
                                 std::uint64_t from) {
  for (std::uint64_t seed = from; seed < from + 4096; ++seed) {
    if (router.affinity_shard(seeded_crystal(seed)) == target) return seed;
  }
  ADD_FAILURE() << "no seed in [" << from << ", " << from + 4096
                << ") maps to shard " << target;
  return from;
}

// ------------------------------------------------------- affinity routing --

TEST(ShardRouting, AffinityIsDeterministicStickyAndSpread) {
  model::CHGNet net(tiny_config(), 7);
  ShardRouter a(net, base_config(4));
  ShardRouter b(net, base_config(4));

  std::set<int> used;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    data::Crystal c = seeded_crystal(seed);
    const int aff = a.affinity_shard(c);
    ASSERT_GE(aff, 0);
    ASSERT_LT(aff, 4);
    // Affinity is a pure function of the fingerprint and the ring: a second
    // router with the same config agrees, and repeats agree with themselves.
    EXPECT_EQ(b.affinity_shard(c), aff);
    EXPECT_EQ(a.affinity_shard(c), aff);
    used.insert(aff);
    ASSERT_TRUE(a.submit(c).ok());
  }
  // 40 random structures over 4 shards with 64 vnodes each must not
  // collapse onto one shard.
  EXPECT_GE(used.size(), 3u);

  auto replies = a.drain();
  ASSERT_EQ(replies.size(), 40u);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    ASSERT_TRUE(replies[i].ok()) << replies[i].error().message;
    const Prediction& p = replies[i].value();
    EXPECT_EQ(p.shard, a.affinity_shard(seeded_crystal(100 + i)));
    EXPECT_FALSE(p.rerouted);
  }
  EXPECT_EQ(a.stats().routed, 40u);
  EXPECT_EQ(a.stats().rerouted, 0u);
}

TEST(ShardRouting, ConsistentHashRemapIsBoundedAndReversible) {
  model::CHGNet net(tiny_config(), 7);
  ShardRouter router(net, base_config(4));

  const int keys = 200;
  std::vector<int> before;
  for (int k = 0; k < keys; ++k) {
    before.push_back(router.affinity_shard(seeded_crystal(1000 + k)));
  }

  const int added = router.add_shard();
  int moved = 0;
  for (int k = 0; k < keys; ++k) {
    const int now = router.affinity_shard(seeded_crystal(1000 + k));
    if (now != before[k]) {
      ++moved;
      // Consistent hashing: a key only moves *onto* the new shard.
      EXPECT_EQ(now, added);
    }
  }
  // Expected move fraction is 1/5; allow generous slack but require that
  // the resize is nothing like a full rehash (~4/5 would move).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, keys * 45 / 100);

  // Removing the same shard restores the original assignment exactly: the
  // surviving vnodes never moved.
  ASSERT_TRUE(router.remove_shard(added).ok());
  for (int k = 0; k < keys; ++k) {
    EXPECT_EQ(router.affinity_shard(seeded_crystal(1000 + k)), before[k]);
  }
}

// ------------------------------------------------------- failover routing --

TEST(ShardFailover, TrippedBacklogServedBitIdenticalBySiblings) {
  model::CHGNet net(tiny_config(), 11);
  RouterConfig rc = base_config(4);
  parallel::FaultPlan plan = parallel::parse_fault_plan("fail:2@0");
  rc.fault_plan = &plan;
  ShardRouter router(net, rc);

  InferenceEngine reference(net, EngineConfig{});

  std::vector<data::Crystal> crystals;
  int on_victim = 0;
  for (std::uint64_t seed = 2000; seed < 2032; ++seed) {
    crystals.push_back(seeded_crystal(seed));
    if (router.affinity_shard(crystals.back()) == 2) ++on_victim;
    ASSERT_TRUE(router.submit(crystals.back()).ok());
  }
  ASSERT_GT(on_victim, 0) << "battery never exercises the tripped shard";

  // Tick 0 trips shard 2 with its queue loaded: the backlog must fail over
  // and still answer, bit-identical, flagged rerouted.
  auto replies = router.drain();
  ASSERT_EQ(replies.size(), crystals.size());
  int rerouted = 0;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    ASSERT_TRUE(replies[i].ok()) << replies[i].error().message;
    const Prediction& p = replies[i].value();
    EXPECT_NE(p.shard, 2) << "tripped shard served a request";
    if (p.rerouted) ++rerouted;
    auto want = reference.predict(crystals[i]);
    ASSERT_TRUE(want.ok());
    expect_bitwise(p, want.value(), "reply " + std::to_string(i));
  }
  EXPECT_EQ(rerouted, on_victim);
  EXPECT_EQ(router.stats().trips, 1u);
  EXPECT_EQ(router.stats().failovers, static_cast<std::uint64_t>(on_victim));
  EXPECT_EQ(router.stats().failover_dropped, 0u);
  EXPECT_EQ(router.shard(2).health(), ShardHealth::kDead);
}

TEST(ShardFailover, HealthStateMachineAndColdCacheRestart) {
  model::CHGNet net(tiny_config(), 13);
  RouterConfig rc = base_config(2);
  rc.shard.restart_ticks = 2;
  rc.shard.rejoin_ticks = 1;
  parallel::FaultPlan plan;  // filled once the victim shard is known
  rc.fault_plan = &plan;
  ShardRouter router(net, rc);

  const data::Crystal warm = seeded_crystal(seed_with_affinity(
      router, /*target=*/0, /*from=*/3000));
  plan.events.push_back(parallel::FaultEvent{
      parallel::FaultKind::kDeviceFailure, /*iteration=*/2, /*device=*/0,
      /*factor=*/1.0, /*duration=*/1});

  // Ticks 0 and 1: warm shard 0's result cache with the same structure.
  for (int tick = 0; tick < 2; ++tick) {
    ASSERT_TRUE(router.submit(warm).ok());
    auto replies = router.drain();
    ASSERT_EQ(replies.size(), 1u);
    ASSERT_TRUE(replies[0].ok());
    EXPECT_EQ(replies[0].value().shard, 0);
    EXPECT_EQ(replies[0].value().cached, tick > 0);
  }
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kHealthy);

  // Tick 2 trips shard 0: kDraining happens inside the tick, so the
  // post-drain observation is already kDead with restart_ticks to go.
  ASSERT_TRUE(router.submit(warm).ok());
  auto replies = router.drain();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].ok()) << replies[0].error().message;
  EXPECT_EQ(replies[0].value().shard, 1);
  EXPECT_TRUE(replies[0].value().rerouted);
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kDead);
  EXPECT_EQ(router.num_routable(), 1);

  // Tick 3: still dead (restart_ticks = 2).  Tick 4: cold-cache restart
  // into the degraded rejoin window.  Tick 5: healthy again.
  (void)router.drain();
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kDead);
  (void)router.drain();
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kDegraded);
  EXPECT_EQ(router.shard(0).restarts(), 1u);
  EXPECT_EQ(router.shard(0).engine().cache().size(), 0u) << "cache not cold";
  EXPECT_EQ(router.stats().restarts, 1u);
  (void)router.drain();
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kHealthy);

  // Affinity is restored (the vnodes never left the ring) but the first
  // post-restart request recomputes: the replay tier is gone.
  ASSERT_TRUE(router.submit(warm).ok());
  replies = router.drain();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].ok());
  EXPECT_EQ(replies[0].value().shard, 0);
  EXPECT_FALSE(replies[0].value().rerouted);
  EXPECT_FALSE(replies[0].value().cached);
}

// The watchdog over the engine's own counters: a numeric-fault burst marks
// the shard degraded (still routable) for rejoin_ticks.
TEST(ShardFailover, WatchdogDegradesOnNumericFaultBurst) {
  model::CHGNet net(tiny_config(), 17);
  RouterConfig rc = base_config(1);
  rc.shard.degrade_fault_threshold = 1;
  rc.shard.rejoin_ticks = 1;
  auto poison = std::make_shared<bool>(false);
  rc.shard.engine.corrupt_batch =
      [poison](data::Batch& b, const std::vector<std::size_t>&) {
        if (!*poison) return;
        float* cart = b.cart.data();
        for (index_t a = 0; a < b.num_atoms; ++a) {
          for (int d = 0; d < 3; ++d) {
            cart[a * 3 + d] = std::numeric_limits<float>::quiet_NaN();
          }
        }
      };
  ShardRouter router(net, rc);

  ASSERT_TRUE(router.submit(seeded_crystal(4000)).ok());
  *poison = true;
  auto replies = router.drain();
  *poison = false;
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_FALSE(replies[0].ok());
  EXPECT_EQ(replies[0].code(), ErrorCode::kNumericFault);
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kDegraded);
  EXPECT_TRUE(router.shard(0).routable());

  // A degraded shard keeps serving; a clean tick returns it to healthy.
  ASSERT_TRUE(router.submit(seeded_crystal(4001)).ok());
  replies = router.drain();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].ok()) << replies[0].error().message;
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kHealthy);
}

// The closed loop: a numeric-fault burst *sustained* for trip_burst_ticks
// consecutive ticks escalates from degrade to an automatic fault trip.  The
// backlog queued on the sick shard re-homes to a sibling with a
// bit-identical (flagged rerouted) reply, the shard walks the ordinary
// kDraining -> kDead -> restart machinery, and rejoins healthy.
TEST(ShardFailover, SustainedBurstAutoTripsIntoFailover) {
  model::CHGNet net(tiny_config(), 17);
  RouterConfig rc = base_config(2);
  rc.shard.degrade_fault_threshold = 1;
  rc.shard.trip_burst_ticks = 2;
  rc.shard.restart_ticks = 1;
  rc.shard.rejoin_ticks = 1;
  auto poison = std::make_shared<bool>(false);
  rc.shard.engine.corrupt_batch =
      [poison](data::Batch& b, const std::vector<std::size_t>&) {
        if (!*poison) return;
        float* cart = b.cart.data();
        for (index_t a = 0; a < b.num_atoms; ++a) {
          for (int d = 0; d < 3; ++d) {
            cart[a * 3 + d] = std::numeric_limits<float>::quiet_NaN();
          }
        }
      };
  ShardRouter router(net, rc);

  // Three distinct structures whose affinity is the shard we poison; the
  // sibling shard serves nothing while poisoned, so its watchdog stays
  // quiet and only shard 0 escalates.
  const std::uint64_t probe = seed_with_affinity(router, 0, 6000);
  const std::uint64_t burst1 = seed_with_affinity(router, 0, probe + 1);
  const std::uint64_t burst2 = seed_with_affinity(router, 0, burst1 + 1);

  // Clean reference reply for the probe structure, served on-affinity.
  ASSERT_TRUE(router.submit(seeded_crystal(probe)).ok());
  auto replies = router.drain();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].ok());
  ASSERT_EQ(replies[0].value().shard, 0);
  const Prediction reference = replies[0].value();

  // Burst tick 1: degrade (still routable, no escalation yet).
  *poison = true;
  ASSERT_TRUE(router.submit(seeded_crystal(burst1)).ok());
  replies = router.drain();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].code(), ErrorCode::kNumericFault);
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kDegraded);
  EXPECT_FALSE(router.shard(0).auto_trip_pending());

  // Burst tick 2: the sustained burst latches the auto-trip.  The shard is
  // still routable -- the router converts the escalation into a trip at
  // the top of the *next* tick, so work queued meanwhile can re-home.
  ASSERT_TRUE(router.submit(seeded_crystal(burst2)).ok());
  replies = router.drain();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].code(), ErrorCode::kNumericFault);
  EXPECT_TRUE(router.shard(0).auto_trip_pending());
  EXPECT_EQ(router.shard(0).auto_trips(), 1u);
  EXPECT_TRUE(router.shard(0).routable());

  // The probe request queues on the sick shard; the auto-trip fails it
  // over to shard 1, whose deterministic forward reproduces the reference
  // reply bit-for-bit.
  *poison = false;
  ASSERT_TRUE(router.submit(seeded_crystal(probe)).ok());
  replies = router.drain();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].ok()) << replies[0].error().message;
  EXPECT_EQ(replies[0].value().shard, 1);
  EXPECT_TRUE(replies[0].value().rerouted);
  expect_bitwise(replies[0].value(), reference, "auto-trip failover");
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kDead);
  EXPECT_EQ(router.shard(0).trips(), 1u);
  EXPECT_EQ(router.stats().auto_trips, 1u);
  EXPECT_EQ(router.stats().trips, 1u);
  EXPECT_EQ(router.stats().failovers, 1u);
  EXPECT_FALSE(router.shard(0).auto_trip_pending()) << "trip must clear it";

  // Restart countdown -> cold-cache rejoin -> healthy, as for any trip.
  (void)router.drain();
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kDegraded);
  EXPECT_EQ(router.shard(0).restarts(), 1u);
  EXPECT_EQ(router.shard(0).engine().cache().size(), 0u) << "cache not cold";
  (void)router.drain();
  EXPECT_EQ(router.shard(0).health(), ShardHealth::kHealthy);

  // Back on-affinity, recomputing (the replay tier died with the trip),
  // still bit-identical.
  ASSERT_TRUE(router.submit(seeded_crystal(probe)).ok());
  replies = router.drain();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].ok());
  EXPECT_EQ(replies[0].value().shard, 0);
  EXPECT_FALSE(replies[0].value().rerouted);
  EXPECT_FALSE(replies[0].value().cached);
  expect_bitwise(replies[0].value(), reference, "post-rejoin recompute");

  // Counter reconciliation survives the escalation + restart.
  const CacheStats cache = router.fleet_cache_stats();
  EXPECT_EQ(cache.lookups, cache.hits + cache.misses);
}

// ----------------------------------------------------------- determinism --

struct BatteryRecord {
  bool ok = false;
  ErrorCode code = ErrorCode::kInvalidInput;
  int shard = -1;
  bool rerouted = false;
  double energy = 0.0;
  std::vector<data::Vec3> forces;
};

std::vector<BatteryRecord> run_battery(const model::CHGNet& net, int shards,
                                       const parallel::FaultPlan* plan) {
  RouterConfig rc = base_config(shards);
  rc.fault_plan = plan;
  ShardRouter router(net, rc);

  std::vector<BatteryRecord> records;
  const int waves = 6, wave_size = 10, distinct = 20;
  for (int w = 0; w < waves; ++w) {
    for (int i = 0; i < wave_size; ++i) {
      const std::uint64_t seed = 5000 + (w * wave_size + i) * 7 % distinct;
      EXPECT_TRUE(router.submit(seeded_crystal(seed)).ok());
    }
    for (const auto& r : router.drain()) {
      BatteryRecord rec;
      rec.ok = r.ok();
      if (r.ok()) {
        rec.shard = r.value().shard;
        rec.rerouted = r.value().rerouted;
        rec.energy = r.value().energy;
        rec.forces = r.value().forces;
      } else {
        rec.code = r.code();
      }
      records.push_back(std::move(rec));
    }
  }
  return records;
}

// Satellite: same seed + same fault plan => identical per-request shard
// assignment, reroute count, and bit-identical predictions, for 1, 2 and 4
// shards -- and the predictions agree across shard counts.
TEST(ShardDeterminism, IdenticalRunsAndShardCountsAgreeBitwise) {
  model::CHGNet net(tiny_config(), 19);
  // Shard index 1 dies at tick 2: a no-op for the 1-shard fleet, a real
  // mid-stream failover for 2 and 4 shards.
  parallel::FaultPlan plan = parallel::parse_fault_plan("fail:1@2");

  std::vector<std::vector<BatteryRecord>> per_count;
  for (int shards : {1, 2, 4}) {
    auto first = run_battery(net, shards, &plan);
    auto second = run_battery(net, shards, &plan);
    ASSERT_EQ(first.size(), second.size()) << shards << " shards";
    for (std::size_t i = 0; i < first.size(); ++i) {
      const std::string what =
          std::to_string(shards) + " shards, request " + std::to_string(i);
      ASSERT_EQ(first[i].ok, second[i].ok) << what;
      EXPECT_EQ(first[i].shard, second[i].shard) << what;
      EXPECT_EQ(first[i].rerouted, second[i].rerouted) << what;
      EXPECT_EQ(first[i].energy, second[i].energy) << what;
      EXPECT_EQ(first[i].forces, second[i].forces) << what;
    }
    per_count.push_back(std::move(first));
  }

  // 2- and 4-shard fleets saw a mid-stream shard death; every request must
  // still be answered, and bit-identically to the 1-shard fleet.
  for (std::size_t n = 1; n < per_count.size(); ++n) {
    ASSERT_EQ(per_count[n].size(), per_count[0].size());
    int rerouted = 0;
    for (std::size_t i = 0; i < per_count[n].size(); ++i) {
      const std::string what = "fleet " + std::to_string(n) + ", request " +
                               std::to_string(i);
      ASSERT_TRUE(per_count[n][i].ok) << what;
      ASSERT_TRUE(per_count[0][i].ok) << what;
      EXPECT_EQ(per_count[n][i].energy, per_count[0][i].energy) << what;
      EXPECT_EQ(per_count[n][i].forces, per_count[0][i].forces) << what;
      if (per_count[n][i].rerouted) ++rerouted;
    }
    EXPECT_GT(rerouted, 0) << "fault plan never forced a reroute";
  }
}

// ---------------------------------------------------------- load shedding --

TEST(ShardShedding, GlobalWatermarkShedsTyped) {
  model::CHGNet net(tiny_config(), 23);
  RouterConfig rc = base_config(2);
  rc.shed_watermark = 3;
  ShardRouter router(net, rc);

  bool shed_seen = false;
  for (std::uint64_t seed = 6000; seed < 6100; ++seed) {
    auto ticket = router.submit(seeded_crystal(seed));
    if (!ticket.ok()) {
      EXPECT_EQ(ticket.code(), ErrorCode::kOverloaded);
      EXPECT_NE(ticket.error().message.find("global shed"), std::string::npos)
          << ticket.error().message;
      // The shed fired because *every* routable queue was at the watermark.
      for (int id : router.shard_ids()) {
        EXPECT_GE(router.shard(id).engine().queue_depth(), rc.shed_watermark);
      }
      shed_seen = true;
      break;
    }
  }
  ASSERT_TRUE(shed_seen) << "100 distinct submits never hit watermark 3x2";
  EXPECT_GE(router.stats().shed, 1u);

  // Draining restores admission.
  for (const auto& r : router.drain()) {
    ASSERT_TRUE(r.ok()) << r.error().message;
  }
  EXPECT_EQ(router.queue_depth(), 0u);
  EXPECT_TRUE(router.submit(seeded_crystal(6999)).ok());
}

TEST(ShardShedding, AllShardsDownIsTypedNotFatal) {
  model::CHGNet net(tiny_config(), 29);
  RouterConfig rc = base_config(2);
  rc.shard.restart_ticks = 1;
  parallel::FaultPlan plan = parallel::parse_fault_plan("fail:0@0,fail:1@0");
  rc.fault_plan = &plan;
  ShardRouter router(net, rc);

  const std::size_t n = 8;
  for (std::uint64_t seed = 7000; seed < 7000 + n; ++seed) {
    ASSERT_TRUE(router.submit(seeded_crystal(seed)).ok());
  }
  // Tick 0 kills both shards: the first trip fails its backlog over to the
  // second shard; the second trip then has no routable sibling.  Every
  // request still gets a typed reply.
  auto replies = router.drain();
  ASSERT_EQ(replies.size(), n);
  for (const auto& r : replies) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kOverloaded);
  }
  EXPECT_EQ(router.stats().failover_dropped, n);
  EXPECT_EQ(router.num_routable(), 0);

  // Submitting into a fully-down fleet is typed too.
  auto ticket = router.submit(seeded_crystal(7100));
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.code(), ErrorCode::kOverloaded);

  // restart_ticks = 1: one idle tick moves both shards through kDead into
  // the restart, and the fleet serves again.
  (void)router.drain();
  (void)router.drain();
  EXPECT_EQ(router.num_routable(), 2);
  ASSERT_TRUE(router.submit(seeded_crystal(7100)).ok());
  auto after = router.drain();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(after[0].ok()) << after[0].error().message;
}

TEST(ShardShedding, StrictRerouteAnswersTypedDegraded) {
  model::CHGNet net(tiny_config(), 31);
  RouterConfig rc = base_config(2);
  rc.strict_reroute = true;
  parallel::FaultPlan plan = parallel::parse_fault_plan("fail:0@0");
  rc.fault_plan = &plan;
  ShardRouter router(net, rc);

  const std::uint64_t on_victim = seed_with_affinity(router, 0, 8000);
  const std::uint64_t on_other = seed_with_affinity(router, 1, 8000);
  ASSERT_TRUE(router.submit(seeded_crystal(on_victim)).ok());
  ASSERT_TRUE(router.submit(seeded_crystal(on_other)).ok());

  auto replies = router.drain();
  ASSERT_EQ(replies.size(), 2u);
  // gid order: the victim's request first.
  ASSERT_FALSE(replies[0].ok());
  EXPECT_EQ(replies[0].code(), ErrorCode::kDegraded);
  ASSERT_TRUE(replies[1].ok()) << replies[1].error().message;
  EXPECT_EQ(replies[1].value().shard, 1);
  EXPECT_FALSE(replies[1].value().rerouted);

  // While the affinity shard is down, strict routing refuses new requests
  // for it with the same typed error instead of silently rerouting.
  auto ticket = router.submit(seeded_crystal(on_victim));
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.code(), ErrorCode::kDegraded);
  EXPECT_TRUE(router.submit(seeded_crystal(on_other)).ok());
}

// ------------------------------------------------- elastic fleet + books --

TEST(ShardElastic, ResizeMidTrafficKeepsServingAndBooks) {
  model::CHGNet net(tiny_config(), 37);
  ShardRouter router(net, base_config(2));

  std::uint64_t ok_replies = 0;
  auto pump = [&](std::uint64_t seed0, int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(router.submit(seeded_crystal(seed0 + i % 8)).ok());
    }
    for (const auto& r : router.drain()) {
      ASSERT_TRUE(r.ok()) << r.error().message;
      ++ok_replies;
    }
  };

  pump(9000, 16);
  const int added = router.add_shard();
  EXPECT_EQ(router.num_shards(), 3);
  pump(9000, 16);

  // Remove the new shard while it has queued work: the backlog fails over
  // and is answered, and its books fold into the fleet accumulators.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(router.submit(seeded_crystal(9100 + i)).ok());
  }
  ASSERT_TRUE(router.remove_shard(added).ok());
  EXPECT_EQ(router.num_shards(), 2);
  for (const auto& r : router.drain()) {
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_NE(r.value().shard, added);
    ++ok_replies;
  }
  pump(9000, 16);

  EXPECT_FALSE(router.remove_shard(999).ok());
  const EngineStats fleet = router.fleet_stats();
  EXPECT_EQ(fleet.served, ok_replies);
  const CacheStats cache = router.fleet_cache_stats();
  EXPECT_EQ(cache.lookups, cache.hits + cache.misses);
  EXPECT_GT(cache.hits, 0u);
}

// Satellite: fleet-wide cache counters reconcile exactly across seeded
// mid-stream shard deaths and restarts.
TEST(ShardReconciliation, FleetCountersExactAcrossRestarts) {
  model::CHGNet net(tiny_config(), 41);
  RouterConfig rc = base_config(4);
  rc.shard.restart_ticks = 1;
  parallel::FaultPlan plan = parallel::parse_fault_plan("fail:2@1,fail:0@3");
  rc.fault_plan = &plan;
  ShardRouter router(net, rc);

  std::uint64_t ok_replies = 0, error_replies = 0;
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          router.submit(seeded_crystal(10000 + (wave * 12 + i) % 24)).ok());
    }
    for (const auto& r : router.drain()) {
      if (r.ok()) {
        ++ok_replies;
        EXPECT_TRUE(std::isfinite(r.value().energy));
      } else {
        ++error_replies;
      }
    }
  }

  EXPECT_EQ(ok_replies + error_replies, 120u);
  EXPECT_EQ(error_replies, 0u) << "3 healthy shards should absorb failovers";
  EXPECT_EQ(router.stats().trips, 2u);
  EXPECT_EQ(router.stats().restarts, 2u);
  EXPECT_EQ(router.shard(2).restarts() + router.shard(0).restarts(), 2u);

  // The reconciliation invariant the satellite demands: across both
  // restarts, fleet-wide lookups == hits + misses, exactly.
  const CacheStats cache = router.fleet_cache_stats();
  EXPECT_EQ(cache.lookups, cache.hits + cache.misses);
  EXPECT_GT(cache.hits, 0u);
  EXPECT_EQ(router.fleet_stats().served, ok_replies);

  // And the per-shard books agree with the fleet sum.
  CacheStats by_shard;
  for (int id : router.shard_ids()) {
    by_shard.merge(router.shard(id).lifetime_cache_stats());
  }
  EXPECT_EQ(by_shard.lookups, cache.lookups);
  EXPECT_EQ(by_shard.hits, cache.hits);
  EXPECT_EQ(by_shard.misses, cache.misses);
}

// --------------------------------------------------- shard-local arenas --

TEST(ShardArena, SteadyStateRecyclesShardLocallyAndTrimsBursts) {
  if (!alloc::pooling_enabled()) {
    GTEST_SKIP() << "pooling disabled (FASTCHG_ALLOC=system)";
  }
  model::CHGNet net(tiny_config(), 43);
  RouterConfig rc = base_config(2);
  rc.shard.engine.cache_capacity = 0;  // force a forward per request
  rc.shard.engine.quantize = true;     // int8 path must recycle too
  rc.shard.pool_trim_slack = 0;        // trim hard between ticks
  ShardRouter router(net, rc);

  auto pump_small = [&] {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(router.submit(seeded_crystal(11000 + i % 6)).ok());
    }
    for (const auto& r : router.drain()) {
      ASSERT_TRUE(r.ok()) << r.error().message;
    }
  };
  const auto fleet_pool = [&] {
    alloc::PoolStats sum;
    for (int id : router.shard_ids()) {
      const alloc::PoolStats ps = router.shard(id).pool().stats();
      sum.misses += ps.misses;
      sum.hits += ps.hits;
      sum.trimmed_bytes += ps.trimmed_bytes;
    }
    return sum;
  };

  // Burst: one wave of much larger structures inflates the big buckets.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(router.submit(seeded_crystal(12000 + i, 16, 20)).ok());
  }
  for (const auto& r : router.drain()) ASSERT_TRUE(r.ok());

  // Next small wave: the burst's buckets sit idle over the demand window,
  // so the end-of-tick watermark trim returns them upstream (the
  // satellite's observable).
  pump_small();
  EXPECT_GT(fleet_pool().trimmed_bytes, 0u);

  // Even with zero slack, repeat waves re-fault nothing: each bucket keeps
  // its own windowed working set across the trim.
  pump_small();  // rebuild any post-burst bucket mix once
  const std::uint64_t miss_steady = fleet_pool().misses;
  pump_small();
  pump_small();
  const alloc::PoolStats end = fleet_pool();
  EXPECT_GT(end.hits, 0u);
  EXPECT_EQ(end.misses, miss_steady)
      << "steady-state waves re-faulted slabs the trim released";

  // With the default (generous) slack, steady-state repeat waves stop
  // missing to the upstream allocator entirely: shard-local recycling.
  RouterConfig rc2 = base_config(2);
  rc2.shard.engine.cache_capacity = 0;
  rc2.shard.engine.quantize = true;
  ShardRouter warm(net, rc2);
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(warm.submit(seeded_crystal(11000 + i % 6)).ok());
    }
    for (const auto& r : warm.drain()) ASSERT_TRUE(r.ok());
  }
  std::uint64_t warm_misses = 0;
  for (int id : warm.shard_ids()) {
    warm_misses += warm.shard(id).pool().stats().misses;
  }
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(warm.submit(seeded_crystal(11000 + i % 6)).ok());
    }
    for (const auto& r : warm.drain()) ASSERT_TRUE(r.ok());
  }
  std::uint64_t warm_misses_after = 0;
  for (int id : warm.shard_ids()) {
    warm_misses_after += warm.shard(id).pool().stats().misses;
  }
  EXPECT_EQ(warm_misses_after, warm_misses)
      << "steady-state sharded serving faulted new slabs";
}

}  // namespace
}  // namespace fastchg::serve
