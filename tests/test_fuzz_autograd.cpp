// Randomized autograd fuzzing: build seeded random expression graphs from a
// safe op alphabet (mixing elementwise, broadcast, matmul, concat, slicing
// and gather/scatter) and verify every one against numeric gradients --
// first order on every graph, second order on the smaller ones.  This
// catches op-composition bugs that per-op unit tests cannot (wrong
// accumulation on diamond fan-out, broadcast-reduction mismatches, etc.).
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "autograd/gradcheck.hpp"
#include "nn/layernorm.hpp"
#include "autograd/ops.hpp"
#include "core/rng.hpp"

namespace fastchg::ag {
namespace {

using namespace ops;

/// Grow a random graph over a pool of [4,3] nodes rooted at two leaves.
/// All values stay O(1) and away from singular points by construction:
/// inputs are in [0.4, 1.6] and the alphabet avoids division by small
/// numbers and domain-edge functions.
Var random_graph(Rng& rng, const std::vector<Var>& leaves, int depth) {
  std::vector<Var> pool = leaves;
  auto pick = [&]() -> const Var& {
    return pool[static_cast<std::size_t>(
        rng.randint(0, static_cast<index_t>(pool.size()) - 1))];
  };
  for (int step = 0; step < depth; ++step) {
    const index_t choice = rng.randint(0, 10);
    Var next;
    switch (choice) {
      case 0: next = add(pick(), pick()); break;
      case 1: next = mul(pick(), pick()); break;
      case 2: next = sub(pick(), pick()); break;
      case 3: next = sigmoid(pick()); break;
      case 4: next = silu(pick()); break;
      case 5: next = mul_scalar(pick(), 0.7f); break;
      case 6: {
        // matmul with a fixed random [3,3] constant keeps shapes stable.
        Tensor w = Tensor::empty({3, 3});
        rng.fill_uniform(w, -0.6f, 0.6f);
        next = matmul(pick(), constant(std::move(w)));
        break;
      }
      case 7: {
        // row gather + scatter back (the GNN message primitive).
        std::vector<index_t> idx{3, 0, 2, 2, 1};
        Var sel = index_select0(pick(), idx);
        next = index_add0(4, {0, 1, 2, 3, 1}, sel);
        break;
      }
      case 8: {
        // split and re-concatenate with a twist.
        const Var& x = pick();
        next = cat({narrow(x, 1, 1, 2), narrow(x, 1, 0, 1)}, 1);
        break;
      }
      case 9: {
        // column-broadcast scaling by the row sums.
        const Var& x = pick();
        next = mul(x, mul_scalar(sum_dim(x, 1, true), 0.2f));
        break;
      }
      default: {
        // fused layer norm (custom kernel with op-composed backward).
        Tensor gamma = Tensor::empty({3});
        Tensor beta = Tensor::empty({3});
        rng.fill_uniform(gamma, 0.5f, 1.5f);
        rng.fill_uniform(beta, -0.3f, 0.3f);
        next = nn::layernorm_fused(pick(), constant(std::move(gamma)),
                                   constant(std::move(beta)), 1e-5f);
        break;
      }
    }
    pool.push_back(next);
  }
  return mean_all(square(pool.back()));
}

class AutogradFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AutogradFuzz, FirstOrderGradientsMatchNumeric) {
  Rng rng(GetParam());
  std::vector<Var> leaves;
  for (int i = 0; i < 2; ++i) {
    Tensor t = Tensor::empty({4, 3});
    rng.fill_uniform(t, 0.4f, 1.6f);
    leaves.emplace_back(std::move(t), /*requires_grad=*/true);
  }
  // The graph must be rebuilt identically inside the gradcheck lambda, so
  // freeze the structure by pre-drawing the random choices via a fixed
  // inner seed.
  const std::uint64_t structure_seed = GetParam() * 31 + 7;
  auto f = [&]() -> Var {
    Rng inner(structure_seed);
    return random_graph(inner, leaves, 8);
  };
  GradCheckOptions opt;
  opt.max_per_leaf = 12;
  // Deep random graphs (especially 3-wide layer norms) can be sharply
  // curved; use a finer step than the default to keep truncation error of
  // the central difference itself below the tolerance.
  opt.eps = 2e-3f;
  auto res = gradcheck(f, leaves, opt);
  EXPECT_TRUE(res.ok) << "seed " << GetParam() << ": " << res.detail
                      << " (abs " << res.max_abs_err << ", rel "
                      << res.max_rel_err << ")";
}

TEST_P(AutogradFuzz, SecondOrderGradientsMatchNumeric) {
  Rng rng(GetParam() + 1000);
  std::vector<Var> leaves;
  for (int i = 0; i < 2; ++i) {
    Tensor t = Tensor::empty({4, 3});
    rng.fill_uniform(t, 0.4f, 1.6f);
    leaves.emplace_back(std::move(t), /*requires_grad=*/true);
  }
  const std::uint64_t structure_seed = GetParam() * 53 + 11;
  auto f = [&]() -> Var {
    Rng inner(structure_seed);
    return random_graph(inner, leaves, 5);  // shallower for 2nd order cost
  };
  GradCheckOptions opt;
  opt.max_per_leaf = 6;
  opt.rtol = 8e-2f;
  auto res = gradcheck_double(f, leaves, opt);
  EXPECT_TRUE(res.ok) << "seed " << GetParam() << ": " << res.detail
                      << " (abs " << res.max_abs_err << ", rel "
                      << res.max_rel_err << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace fastchg::ag
