// Tests for the MD driver and relaxation: NVE energy conservation under the
// derivative-readout model (a strong end-to-end consistency check of
// model + integrator), temperature init, COM momentum removal, and that
// relaxation lowers energy and forces.
#include <gtest/gtest.h>

#include <cmath>

#include "md/md.hpp"
#include "md/relax.hpp"

namespace fastchg::md {
namespace {

model::ModelConfig tiny_config(bool decoupled) {
  model::ModelConfig cfg;
  cfg.feat_dim = 12;
  cfg.num_radial = 7;
  cfg.num_angular = 7;
  cfg.num_layers = 2;
  cfg.batched_basis = true;
  cfg.fused_kernels = true;
  cfg.factored_envelope = true;
  cfg.decoupled_heads = decoupled;
  return cfg;
}

data::Crystal small_crystal(std::uint64_t seed = 900) {
  Rng rng(seed);
  data::GeneratorConfig g;
  g.min_atoms = 4;
  g.max_atoms = 6;
  return data::random_crystal(rng, g);
}

TEST(AtomicMass, Reasonable) {
  EXPECT_NEAR(atomic_mass(1), 1.008, 1e-6);
  EXPECT_NEAR(atomic_mass(8), 16.0, 1e-6);
  EXPECT_GT(atomic_mass(26), atomic_mass(3));
}

TEST(MD, InitialTemperatureNearTarget) {
  model::CHGNet net(tiny_config(true), 1);
  MDConfig cfg;
  cfg.init_temperature_k = 300.0;
  cfg.seed = 5;
  // Small systems fluctuate; average over several seeds.
  double t_sum = 0.0;
  int n = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    MDConfig c2 = cfg;
    c2.seed = s;
    MDSimulator sim(net, small_crystal(901 + s), c2);
    t_sum += sim.temperature();
    ++n;
  }
  EXPECT_NEAR(t_sum / n, 300.0, 150.0);
}

TEST(MD, CenterOfMassMomentumZero) {
  model::CHGNet net(tiny_config(true), 2);
  MDSimulator sim(net, small_crystal(), {});
  data::Vec3 p{};
  const auto& v = sim.velocities();
  for (index_t i = 0; i < sim.crystal().natoms(); ++i) {
    const double m = atomic_mass(sim.crystal().species[i]);
    for (int d = 0; d < 3; ++d) p[d] += m * v[i][d];
  }
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(p[d], 0.0, 1e-9);
}

TEST(MD, NVEEnergyConservationWithDerivativeForces) {
  // With forces = -dE/dx (reference readout) velocity Verlet must conserve
  // E_tot to high order in dt, whatever the (random) potential looks like.
  model::CHGNet net(tiny_config(false), 3);
  MDConfig cfg;
  cfg.dt_fs = 0.25;
  cfg.init_temperature_k = 150.0;
  MDSimulator sim(net, small_crystal(910), cfg);
  const double e0 = sim.total_energy();
  sim.step(20);
  const double e1 = sim.total_energy();
  const double scale =
      std::max({std::fabs(e0), sim.kinetic_energy(), 1e-3});
  EXPECT_NEAR(e1, e0, 0.05 * scale)
      << "E0 " << e0 << " E1 " << e1 << " KE " << sim.kinetic_energy();
}

TEST(MD, StepCounterAndTimer) {
  model::CHGNet net(tiny_config(true), 4);
  MDSimulator sim(net, small_crystal(911), {});
  const double per_step = sim.step(3);
  EXPECT_EQ(sim.steps_taken(), 3);
  EXPECT_GT(per_step, 0.0);
}

TEST(MD, FractionalCoordinatesStayWrapped) {
  model::CHGNet net(tiny_config(true), 5);
  MDConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.init_temperature_k = 600.0;
  MDSimulator sim(net, small_crystal(912), cfg);
  sim.step(10);
  for (const auto& f : sim.crystal().frac) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(f[d], 0.0);
      EXPECT_LT(f[d], 1.0);
    }
  }
}

TEST(Relax, LowersEnergyAndForces) {
  model::CHGNet net(tiny_config(false), 6);
  data::Crystal c = small_crystal(913);
  RelaxConfig cfg;
  cfg.max_steps = 30;
  cfg.fmax_tol = 1e-4;  // unreachable: force full 30 steps
  RelaxResult res = relax(net, c, cfg);
  EXPECT_LE(res.final_energy, res.initial_energy + 1e-6);
  EXPECT_GT(res.steps, 0);
}

TEST(Relax, ConvergesWithLooseTolerance) {
  model::CHGNet net(tiny_config(false), 7);
  data::Crystal c = small_crystal(914);
  RelaxConfig cfg;
  cfg.fmax_tol = 1e3;  // trivially satisfied
  RelaxResult res = relax(net, c, cfg);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.steps, 0);
}

}  // namespace
}  // namespace fastchg::md
