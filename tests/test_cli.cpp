// End-to-end smoke tests of the `fastchgnet` CLI binary: every subcommand
// must run to completion with exit code 0 and produce its expected output
// markers; unknown commands and bad inputs must fail cleanly.
// The binary path is injected by CMake as FASTCHG_CLI_PATH.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

#ifndef FASTCHG_CLI_PATH
#define FASTCHG_CLI_PATH "fastchgnet"
#endif

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(FASTCHG_CLI_PATH) + " " + args + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  CliResult res;
  if (pipe == nullptr) return res;
  std::array<char, 512> buf{};
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    res.output += buf.data();
  }
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

TEST(Cli, InfoRunsAndReportsParams) {
  CliResult r = run_cli("info");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FastCHGNet"), std::string::npos);
  EXPECT_NE(r.output.find("params"), std::string::npos);
}

TEST(Cli, GenerateReportsDistribution) {
  CliResult r = run_cli("generate --n 32 --seed 5");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("mean atoms"), std::string::npos);
  EXPECT_NE(r.output.find("long tail"), std::string::npos);
}

TEST(Cli, TrainTinyRunEmitsMetrics) {
  CliResult r = run_cli("train --n 24 --epochs 1 --width 8 --radial 5 "
                        "--layers 1 --batch 8");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("test MAE"), std::string::npos);
  EXPECT_NE(r.output.find("meV/atom"), std::string::npos);
}

TEST(Cli, MdRunsSteps) {
  CliResult r = run_cli("md --crystal LiMnO2 --steps 5 --width 8 --radial 5 "
                        "--layers 1");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("E_tot(eV)"), std::string::npos);
  EXPECT_NE(r.output.find("g(r) peak"), std::string::npos);
}

TEST(Cli, ChargesReportNeutrality) {
  CliResult r = run_cli("charges --seed 3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("oxidation"), std::string::npos);
  EXPECT_NE(r.output.find("total charge"), std::string::npos);
}

TEST(Cli, UnknownCommandFailsWithUsage) {
  CliResult r = run_cli("frobnicate");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, BadCrystalNameFailsCleanly) {
  CliResult r = run_cli("md --crystal NotACrystal --steps 1");
  EXPECT_EQ(r.exit_code, 2);  // fastchg::Error path
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

}  // namespace
