// Tests for the multi-device layer: samplers (invariants + the CoV
// reduction the paper reports), the ring all-reduce cost model, the
// data-parallel trainer (DDP replica invariant, gradient-averaging
// equivalence), and the scaling harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>

#include "parallel/data_parallel.hpp"
#include "parallel/scaling.hpp"
#include "perf/trace.hpp"

namespace fastchg::parallel {
namespace {

data::Dataset medium_dataset(index_t n = 64, std::uint64_t seed = 5150) {
  data::GeneratorConfig g;
  g.min_atoms = 2;
  g.max_atoms = 24;
  g.lognormal_mu = 1.8;
  return data::Dataset::generate(n, seed, g);
}

std::vector<index_t> all_rows(const data::Dataset& ds) {
  std::vector<index_t> rows(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    rows[static_cast<std::size_t>(i)] = i;
  }
  return rows;
}

model::ModelConfig tiny_fast_config() {
  model::ModelConfig cfg = model::ModelConfig::fast();
  cfg.feat_dim = 8;
  cfg.num_radial = 5;
  cfg.num_angular = 5;
  cfg.num_layers = 1;
  return cfg;
}

// ---------------------------------------------------------------------------
// samplers
// ---------------------------------------------------------------------------

class SamplerInvariants : public ::testing::TestWithParam<bool> {};

TEST_P(SamplerInvariants, PartitionIsExactAndBalancedInCount) {
  const bool balance = GetParam();
  data::Dataset ds = medium_dataset();
  auto rows = all_rows(ds);
  auto loads = sample_workloads(ds);
  SamplerConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 16;
  ShardPlan plan = balance ? load_balance_sharding(rows, loads, cfg)
                           : default_sharding(rows, loads, cfg);
  EXPECT_EQ(plan.num_iterations(), 4);  // 64 / 16
  std::multiset<index_t> seen;
  for (const auto& devs : plan.iterations) {
    ASSERT_EQ(devs.size(), 4u);
    for (const auto& shard : devs) {
      EXPECT_EQ(shard.size(), 4u);  // 16 / 4 samples per device
      seen.insert(shard.begin(), shard.end());
    }
  }
  EXPECT_EQ(seen.size(), 64u);  // every sample exactly once
  for (index_t r : rows) EXPECT_EQ(seen.count(r), 1u);
}

INSTANTIATE_TEST_SUITE_P(Both, SamplerInvariants, ::testing::Bool());

TEST(Sampler, LoadBalanceReducesCoV) {
  // The headline Fig. 9 claim: the paired smallest+largest assignment cuts
  // the coefficient of variance several-fold vs the default sampler.
  data::Dataset ds = medium_dataset(256, 99);
  auto rows = all_rows(ds);
  auto loads = sample_workloads(ds);
  SamplerConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 32;
  BalanceStats def =
      analyze_plan(default_sharding(rows, loads, cfg), loads);
  BalanceStats bal =
      analyze_plan(load_balance_sharding(rows, loads, cfg), loads);
  EXPECT_LT(bal.mean_cov, def.mean_cov * 0.55)
      << "default " << def.mean_cov << " balanced " << bal.mean_cov;
}

TEST(Sampler, IndivisibleBatchThrows) {
  data::Dataset ds = medium_dataset(16, 1);
  auto rows = all_rows(ds);
  auto loads = sample_workloads(ds);
  SamplerConfig cfg;
  cfg.num_devices = 3;
  cfg.global_batch = 16;  // not divisible by 3
  EXPECT_THROW(default_sharding(rows, loads, cfg), Error);
}

TEST(Sampler, DropLastRaggedBatch) {
  data::Dataset ds = medium_dataset(20, 2);
  auto rows = all_rows(ds);
  auto loads = sample_workloads(ds);
  SamplerConfig cfg;
  cfg.num_devices = 2;
  cfg.global_batch = 16;
  ShardPlan plan = default_sharding(rows, loads, cfg);
  EXPECT_EQ(plan.num_iterations(), 1);  // 20 -> one full batch, rest dropped
}

TEST(Sampler, WorkloadsMatchGraphs) {
  data::Dataset ds = medium_dataset(8, 3);
  auto loads = sample_workloads(ds);
  for (index_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loads[static_cast<std::size_t>(i)],
              ds[i].graph.feature_number());
  }
}

// ---------------------------------------------------------------------------
// communication model
// ---------------------------------------------------------------------------

TEST(CommModel, SingleDeviceIsFree) {
  EXPECT_DOUBLE_EQ(ring_allreduce_seconds(1 << 20, 1), 0.0);
}

TEST(CommModel, RingFormula) {
  CommConfig cfg;
  cfg.intra_node_bw = 100e9;
  cfg.latency = 1e-5;
  cfg.gpus_per_node = 8;
  const std::uint64_t bytes = 100'000'000;
  const double expect = 2.0 * 3.0 / 4.0 * 1e8 / 100e9 + 2.0 * 3.0 * 1e-5;
  EXPECT_NEAR(ring_allreduce_seconds(bytes, 4, cfg), expect, 1e-12);
}

TEST(CommModel, InterNodeBandwidthCliff) {
  CommConfig cfg;  // 4 GPUs per node
  const std::uint64_t bytes = 4 * 429046;  // paper-sized model
  const double t4 = ring_allreduce_seconds(bytes, 4, cfg);
  const double t8 = ring_allreduce_seconds(bytes, 8, cfg);
  // Crossing the node boundary costs much more than the 2x ring growth.
  EXPECT_GT(t8, 2.0 * t4);
}

TEST(CommModel, HierarchicalBeatsFlatAcrossNodes) {
  CommConfig flat, hier;
  flat.hierarchical = false;
  hier.hierarchical = true;
  const std::uint64_t bytes = 4 * 429046;
  for (int p : {8, 16, 32}) {
    const auto f = bucketed_allreduce_cost(bytes, p, flat);
    const auto h = bucketed_allreduce_cost(bytes, p, hier);
    EXPECT_LT(h.total(), f.total()) << p << " devices";
  }
  // Within one node the two agree.
  const auto a = bucketed_allreduce_cost(bytes, 4, flat);
  const auto b = bucketed_allreduce_cost(bytes, 4, hier);
  EXPECT_DOUBLE_EQ(a.total(), b.total());
}

TEST(CommModel, OverlapHidesComm) {
  EXPECT_DOUBLE_EQ(exposed_comm_seconds(0.01, 1.0, true), 0.0);
  EXPECT_NEAR(exposed_comm_seconds(0.9, 1.0, true, 0.8), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(exposed_comm_seconds(0.9, 1.0, false), 0.9);
}

TEST(CommModel, PrefetchHidesCopies) {
  EXPECT_DOUBLE_EQ(exposed_h2d_seconds(0.005, 0.5, true), 0.0);
  EXPECT_DOUBLE_EQ(exposed_h2d_seconds(0.005, 0.5, false), 0.005);
  EXPECT_NEAR(exposed_h2d_seconds(0.7, 0.5, true), 0.2, 1e-12);
}

// ---------------------------------------------------------------------------
// data-parallel trainer
// ---------------------------------------------------------------------------

TEST(DataParallel, ReplicasStayBitIdentical) {
  data::Dataset ds = medium_dataset(32, 7);
  DataParallelConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 8;
  DataParallelTrainer dp(tiny_fast_config(), cfg, 11);
  EXPECT_EQ(dp.replica_divergence(), 0.0f);
  auto rows = all_rows(ds);
  dp.train_epoch(ds, rows, 0);
  // DDP invariant: identical averaged grads + identical optimizer state.
  EXPECT_EQ(dp.replica_divergence(), 0.0f);
}

TEST(DataParallel, MatchesSingleDeviceGradientAccumulation) {
  // One DP iteration with P devices must equal a single-device step over the
  // same global batch with averaged gradients (mathematical DDP identity).
  data::Dataset ds = medium_dataset(8, 8);
  auto rows = all_rows(ds);

  DataParallelConfig cfg;
  cfg.num_devices = 2;
  cfg.global_batch = 8;
  cfg.load_balance = false;
  cfg.scale_lr = false;
  cfg.fit_atom_ref = false;  // the manual twin below skips AtomRef too
  cfg.seed = 3;
  DataParallelTrainer dp(tiny_fast_config(), cfg, 21);

  // Reconstruct the exact shards the trainer will use.
  auto loads = sample_workloads(ds);
  SamplerConfig scfg;
  scfg.num_devices = 2;
  scfg.global_batch = 8;
  scfg.seed = 3;
  ShardPlan plan = default_sharding(rows, loads, scfg);
  ASSERT_EQ(plan.num_iterations(), 1);

  // Manual reference: accumulate averaged gradients on a twin model.
  model::CHGNet twin(tiny_fast_config(), 21);
  twin.copy_parameters_from(dp.master());
  train::Adam opt(twin.parameters(), cfg.base_lr);
  twin.zero_grad();
  std::vector<Tensor> grad_sum;
  for (const auto& shard : plan.iterations[0]) {
    twin.zero_grad();
    data::Batch b = data::collate_indices(ds, shard);
    auto out = twin.forward(b, model::ForwardMode::kTrain);
    ag::backward(train::chgnet_loss(out, b).total);
    auto params = twin.parameters();
    if (grad_sum.empty()) {
      for (auto& p : params) {
        grad_sum.push_back(p.has_grad() ? p.grad().clone()
                                        : Tensor::zeros(p.shape()));
      }
    } else {
      for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i].has_grad()) grad_sum[i].add_(params[i].grad());
      }
    }
  }
  {
    auto params = twin.parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      grad_sum[i].mul_(0.5f);
      params[i].set_grad(grad_sum[i].clone());
    }
  }
  opt.step();

  dp.train_epoch(ds, rows, 0);

  auto a = dp.master().parameters();
  auto b = twin.parameters();
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float* pa = a[i].value().data();
    const float* pb = b[i].value().data();
    for (index_t k = 0; k < a[i].numel(); ++k) {
      worst = std::max(worst, std::fabs(pa[k] - pb[k]));
    }
  }
  EXPECT_LT(worst, 1e-5f);
}

TEST(DataParallel, TimingFieldsPopulated) {
  data::Dataset ds = medium_dataset(16, 9);
  DataParallelConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 8;
  DataParallelTrainer dp(tiny_fast_config(), cfg, 31);
  auto res = dp.train_epoch(ds, all_rows(ds), 0);
  ASSERT_EQ(res.iterations.size(), 2u);
  for (const auto& it : res.iterations) {
    EXPECT_EQ(it.device_compute_s.size(), 4u);
    EXPECT_GT(it.max_compute_s, 0.0);
    EXPECT_GT(it.comm_s, 0.0);
    EXPECT_GE(it.step_s, it.max_compute_s);
  }
  EXPECT_GT(res.simulated_seconds, 0.0);
  EXPECT_TRUE(std::isfinite(res.mean_loss));
}

TEST(DataParallel, Eq14AppliedToGlobalBatch) {
  DataParallelConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 2048;
  cfg.scale_lr = true;
  DataParallelTrainer dp(tiny_fast_config(), cfg, 41);
  EXPECT_NEAR(dp.effective_lr(), 2048.0f / 128.0f * 3e-4f, 1e-7f);
}


TEST(DataParallel, LossDecreasesOverEpochs) {
  data::Dataset ds = medium_dataset(48, 15);
  DataParallelConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 16;
  cfg.base_lr = 3e-3f;
  cfg.scale_lr = false;
  DataParallelTrainer dp(tiny_fast_config(), cfg, 71);
  auto rows = all_rows(ds);
  const double first = dp.train_epoch(ds, rows, 0).mean_loss;
  double last = first;
  for (index_t e = 1; e < 5; ++e) {
    last = dp.train_epoch(ds, rows, e).mean_loss;
  }
  EXPECT_LT(last, first) << "first " << first << " last " << last;
}

// ---------------------------------------------------------------------------
// scaling harness
// ---------------------------------------------------------------------------

TEST(Scaling, CostModelPredictsPositiveAndMonotone) {
  data::Dataset ds = medium_dataset(32, 10);
  model::CHGNet net(tiny_fast_config(), 51);
  CostModel cm = calibrate_cost_model(net, ds, {2, 4, 8}, 2, 1);
  const double small = cm.predict(10, 100, 200);
  const double big = cm.predict(100, 1000, 2000);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small);
}

TEST(Scaling, StrongScalingShapeMatchesPaper) {
  // With a calibrated-like cost model and the default comm parameters the
  // curve must show: monotone speedup, sub-linear efficiency, efficiency
  // decaying with P (paper: 82.5% at 8 -> 66% at 32).
  data::Dataset ds = medium_dataset(512, 11);
  CostModel cm;  // compute-dominated regime (comm latency << device compute)
  cm.fixed = 2e-4;
  cm.per_atom = 1e-4;
  cm.per_bond = 3e-5;
  cm.per_angle = 1e-5;
  ScalingConfig cfg;
  cfg.strong_global_batch = 256;
  cfg.device_counts = {4, 8, 16, 32};
  cfg.straggler_sigma = 0.0;  // deterministic for the monotonicity asserts
  const std::uint64_t model_bytes = 429046 * 4;
  auto pts = strong_scaling(cm, ds, model_bytes, cfg);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts[0].speedup, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].speedup, pts[i - 1].speedup);        // still speeds up
    EXPECT_LT(pts[i].efficiency, pts[i - 1].efficiency + 1e-9);  // decays
    EXPECT_LT(pts[i].speedup,
              static_cast<double>(pts[i].devices) / 4.0 + 1e-9);  // sub-linear
  }
}

TEST(Scaling, WeakScalingEfficiencyDecays) {
  data::Dataset ds = medium_dataset(512, 12);
  CostModel cm;
  cm.fixed = 2e-4;
  cm.per_atom = 1e-6;
  cm.per_bond = 3e-7;
  cm.per_angle = 1e-7;
  ScalingConfig cfg;
  cfg.weak_per_device_batch = 16;
  cfg.device_counts = {4, 8, 16};
  // Expose the all-reduce so the efficiency decay is deterministic; with
  // overlap on, comm hides entirely at this scale and only sampler noise
  // remains.
  cfg.overlap_comm = false;
  cfg.straggler_sigma = 0.0;
  auto pts = weak_scaling(cm, ds, 429046 * 4, cfg);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_NEAR(pts[0].efficiency, 1.0, 1e-9);
  EXPECT_LE(pts[1].efficiency, 1.0 + 1e-9);
  EXPECT_LE(pts[2].efficiency, pts[1].efficiency + 1e-9);
}

TEST(Scaling, StragglerJitterLowersEfficiencyMoreAtHighP) {
  // The documented role of straggler_sigma: the max over P jittered devices
  // grows with P, so jitter costs more efficiency at 32 devices than at 4.
  // Use near-uniform workloads so the jitter effect is isolated from
  // intrinsic load imbalance.
  data::GeneratorConfig g;
  g.min_atoms = 8;
  g.max_atoms = 8;
  data::Dataset ds = data::Dataset::generate(512, 14, g);
  CostModel cm;  // compute-dominated regime
  cm.per_atom = 1e-4;
  cm.per_bond = 3e-5;
  cm.per_angle = 1e-5;
  ScalingConfig ideal, jittered;
  ideal.strong_global_batch = jittered.strong_global_batch = 256;
  ideal.device_counts = jittered.device_counts = {4, 32};
  ideal.straggler_sigma = 0.0;
  jittered.straggler_sigma = 0.15;
  auto pi = strong_scaling(cm, ds, 429046 * 4, ideal);
  auto pj = strong_scaling(cm, ds, 429046 * 4, jittered);
  // The expected-max factor 1 + sigma*sqrt(2 ln P) grows with P, so the
  // straggler model must cost strictly more efficiency at 32 devices.
  EXPECT_LT(pj[1].efficiency, pi[1].efficiency);
  EXPECT_GT(pj[1].epoch_seconds, pi[1].epoch_seconds);
}

TEST(Scaling, LoadBalanceImprovesSimulatedEpoch) {
  data::Dataset ds = medium_dataset(512, 13);
  CostModel cm;
  cm.per_atom = 1e-6;
  cm.per_bond = 3e-7;
  cm.per_angle = 1e-7;
  ScalingConfig balanced, unbalanced;
  balanced.strong_global_batch = unbalanced.strong_global_batch = 128;
  balanced.device_counts = unbalanced.device_counts = {8};
  unbalanced.load_balance = false;
  auto on = strong_scaling(cm, ds, 429046 * 4, balanced);
  auto off = strong_scaling(cm, ds, 429046 * 4, unbalanced);
  EXPECT_LT(on[0].epoch_seconds, off[0].epoch_seconds);
}

// ---------------------------------------------------------------------------
// trace vs timing ledger: the simulated-time spans the trainer emits are an
// independent witness of EpochResult's accounting.  Each alive device lane
// tiles every step exactly (compute + straggler slack + exposed comm/H2D +
// recovery = step_s), so each lane's span total must equal
// simulated_seconds -- including when a fault plan stretches a straggler.
// ---------------------------------------------------------------------------

std::map<int, double> sim_lane_totals() {
  std::map<int, double> totals;
  for (const perf::TraceEvent& e : perf::trace_events()) {
    if (e.clock == perf::TraceClock::kSim) totals[e.lane] += e.dur_us / 1e6;
  }
  return totals;
}

TEST(DataParallel, TraceMatchesSimulatedLedger) {
  data::Dataset ds = medium_dataset(32, 7);
  auto rows = all_rows(ds);
  DataParallelConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 8;  // 4 iterations
  DataParallelTrainer dp(tiny_fast_config(), cfg, 11);
  const FaultPlan plan = parse_fault_plan("slow:1@0*4#2");
  perf::trace_enable();
  EpochResult res = dp.train_epoch(ds, rows, 0, &plan);
  const auto totals = sim_lane_totals();
  perf::Trace::instance().shutdown();
  ASSERT_EQ(res.iterations.size(), 4u);
  ASSERT_EQ(totals.size(), 4u);  // one lane per device
  const double tol = 1e-6 * (1.0 + res.simulated_seconds);
  for (const auto& [dev, total] : totals) {
    EXPECT_NEAR(total, res.simulated_seconds, tol) << "device " << dev;
  }
  // The straggler actually showed up: device 1's iteration-0 compute is the
  // epoch max, so everyone else's lane carries straggler slack.
  EXPECT_EQ(res.iterations[0].max_compute_s,
            res.iterations[0].device_compute_s[1]);
}

TEST(DataParallel, TraceLedgerHoldsForSurvivorsAfterFailure) {
  data::Dataset ds = medium_dataset(32, 7);
  auto rows = all_rows(ds);
  DataParallelConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 8;
  DataParallelTrainer dp(tiny_fast_config(), cfg, 11);
  const FaultPlan plan = parse_fault_plan("fail:2@1");
  perf::trace_enable();
  EpochResult res = dp.train_epoch(ds, rows, 0, &plan);
  const auto totals = sim_lane_totals();
  perf::Trace::instance().shutdown();
  ASSERT_EQ(totals.size(), 4u);  // the dead lane keeps its pre-failure spans
  const double tol = 1e-6 * (1.0 + res.simulated_seconds);
  for (const auto& [dev, total] : totals) {
    if (dev == 2) {
      // Device 2 died at the start of iteration 1: its lane covers exactly
      // the steps it lived through, strictly less than the epoch.
      EXPECT_NEAR(total, res.iterations[0].step_s, tol);
      EXPECT_LT(total, res.simulated_seconds - tol);
    } else {
      EXPECT_NEAR(total, res.simulated_seconds, tol) << "device " << dev;
    }
  }
  EXPECT_EQ(res.failed_devices, std::vector<int>{2});
  EXPECT_GT(res.recovery_seconds, 0.0);
}

TEST(DataParallel, TraceLedgerCoversARejoinedDevice) {
  data::Dataset ds = medium_dataset(32, 7);
  auto rows = all_rows(ds);
  DataParallelConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 8;
  DataParallelTrainer dp(tiny_fast_config(), cfg, 11);
  const FaultPlan plan = parse_fault_plan("fail:2@1,join:2@3");
  perf::trace_enable();
  EpochResult res = dp.train_epoch(ds, rows, 0, &plan);
  const auto totals = sim_lane_totals();
  bool saw_join_span = false;
  for (const perf::TraceEvent& e : perf::trace_events()) {
    if (e.clock == perf::TraceClock::kSim &&
        std::strcmp(e.name, "join") == 0) {
      saw_join_span = true;
    }
  }
  perf::Trace::instance().shutdown();
  // 1 iteration on 4 devices, 2 on 3 (batch 6), then 1 on 4 again.
  ASSERT_EQ(res.iterations.size(), 4u);
  EXPECT_EQ(res.joined_devices, std::vector<int>{2});
  EXPECT_GT(res.join_seconds, 0.0);
  EXPECT_TRUE(saw_join_span);  // the "join" lane segment was emitted
  ASSERT_EQ(totals.size(), 4u);
  const double tol = 1e-6 * (1.0 + res.simulated_seconds);
  // Device 2 sat out iterations 1-2: its lane covers exactly the steps it
  // was in the ring for (the join charge rides iteration 3, which it is
  // back for); every other lane tiles the whole epoch.
  for (const auto& [dev, total] : totals) {
    if (dev == 2) {
      EXPECT_NEAR(total, res.iterations[0].step_s + res.iterations[3].step_s,
                  tol);
    } else {
      EXPECT_NEAR(total, res.simulated_seconds, tol) << "device " << dev;
    }
  }
}

}  // namespace
}  // namespace fastchg::parallel
