// Tests for the hardened serving layer (docs/serving.md): typed errors,
// crystal validation, numeric watchdogs, MD dt-halving recovery, quantized
// -> fp32 degradation, admission control, injected-fault retries, and a
// fuzzed sweep asserting every malformed request dies as a typed error.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "md/md.hpp"
#include "md/relax.hpp"
#include "parallel/fault.hpp"
#include "perf/counters.hpp"
#include "serve/engine.hpp"
#include "serve/fuzz.hpp"
#include "serve/validate.hpp"
#include "serve/watchdog.hpp"

namespace fastchg::serve {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

model::ModelConfig tiny_config(bool decoupled) {
  model::ModelConfig cfg;
  cfg.feat_dim = 12;
  cfg.num_radial = 7;
  cfg.num_angular = 7;
  cfg.num_layers = 2;
  cfg.batched_basis = true;
  cfg.fused_kernels = true;
  cfg.factored_envelope = true;
  cfg.decoupled_heads = decoupled;
  return cfg;
}

data::Crystal small_crystal(std::uint64_t seed = 900) {
  Rng rng(seed);
  data::GeneratorConfig g;
  g.min_atoms = 4;
  g.max_atoms = 6;
  return data::random_crystal(rng, g);
}

/// Poison every parameter tensor of a module with NaN weights so any
/// forward pass is guaranteed to emit non-finite outputs.
void poison(nn::Module& m) {
  auto params = m.named_parameters();
  ASSERT_FALSE(params.empty());
  for (auto& [name, p] : params) {
    p.node()->value.fill_(std::numeric_limits<float>::quiet_NaN());
  }
}

// ---------------------------------------------------------------- Result --

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_THROW((void)ok.error(), Error);

  auto bad = Result<int>::failure(ErrorCode::kTimeout, "late");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kTimeout);
  EXPECT_EQ(bad.error().message, "late");
  EXPECT_THROW((void)bad.value(), Error);

  Result<void> v;
  EXPECT_TRUE(v.ok());
  EXPECT_STREQ(to_string(ErrorCode::kNumericFault), "numeric_fault");
}

// ------------------------------------------------------------ Validation --

TEST(Validate, AcceptsGeneratedCrystal) {
  EXPECT_TRUE(validate_crystal(small_crystal()).ok());
}

TEST(Validate, RejectsSingularLattice) {
  data::Crystal c = small_crystal();
  c.lattice[1] = c.lattice[0];  // duplicated row: det = 0
  auto r = validate_crystal(c);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidInput);
  EXPECT_TRUE(std::isinf(lattice_condition(c.lattice)));
}

TEST(Validate, RejectsIllConditionedLattice) {
  data::Crystal c = small_crystal();
  c.lattice[1] = c.lattice[0];
  c.lattice[1][0] += 1e-7;  // nearly dependent rows
  auto r = validate_crystal(c);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidInput);
}

TEST(Validate, RejectsEmptyBadSpeciesAndNaN) {
  {
    data::Crystal c;  // zero atoms
    EXPECT_EQ(validate_crystal(c).code(), ErrorCode::kInvalidInput);
  }
  {
    data::Crystal c = small_crystal();
    c.species[0] = 200;  // beyond Z = 118
    EXPECT_EQ(validate_crystal(c).code(), ErrorCode::kInvalidInput);
  }
  {
    data::Crystal c = small_crystal();
    c.species[0] = 0;
    EXPECT_EQ(validate_crystal(c).code(), ErrorCode::kInvalidInput);
  }
  {
    data::Crystal c = small_crystal();
    c.frac[0][1] = kNaN;
    EXPECT_EQ(validate_crystal(c).code(), ErrorCode::kInvalidInput);
  }
  {
    data::Crystal c = small_crystal();
    c.lattice[2][2] = kNaN;
    EXPECT_EQ(validate_crystal(c).code(), ErrorCode::kInvalidInput);
  }
}

TEST(Validate, RejectsOverlapAndDenseCell) {
  {
    data::Crystal c = small_crystal();
    c.frac[1] = c.frac[0];  // coincident sites
    auto r = validate_crystal(c);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kInvalidInput);
    EXPECT_LT(min_interatomic_distance(c), 1e-6);
  }
  {
    data::Crystal c = small_crystal();
    for (auto& row : c.lattice) {
      for (double& x : row) x *= 0.05;  // 8000x density
    }
    EXPECT_EQ(validate_crystal(c).code(), ErrorCode::kInvalidInput);
  }
}

TEST(Validate, MinDistanceSeesPeriodicImages) {
  // Two atoms at frac 0.01 and 0.99 are ~0.02 apart through the boundary.
  data::Crystal c;
  c.lattice = {{{5, 0, 0}, {0, 5, 0}, {0, 0, 5}}};
  c.frac = {{0.01, 0.5, 0.5}, {0.99, 0.5, 0.5}};
  c.species = {6, 6};
  EXPECT_NEAR(min_interatomic_distance(c), 0.1, 1e-9);
  EXPECT_EQ(validate_crystal(c).code(), ErrorCode::kInvalidInput);
}

// ------------------------------------------------------------- Watchdogs --

TEST(Watchdog, CheckOutputFlagsMissingAndNonFinite) {
  model::ModelOutput out;  // all heads undefined
  auto r = check_output(out);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNumericFault);

  // A real eval forward passes.
  model::CHGNet net(tiny_config(true), 1);
  data::Dataset ds = data::Dataset::from_crystals({small_crystal()}, {}, {},
                                                  /*relabel=*/false);
  auto good = net.forward(data::collate_indices(ds, {0}),
                          model::ForwardMode::kEval);
  EXPECT_TRUE(check_output(good).ok());

  // Poisoned weights surface as a named non-finite head.
  poison(net);
  auto bad = net.forward(data::collate_indices(ds, {0}),
                         model::ForwardMode::kEval);
  auto rb = check_output(bad);
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(rb.code(), ErrorCode::kNumericFault);
}

TEST(Watchdog, EnergyDriftMonitorBoundsPerStepChange) {
  EnergyDriftMonitor mon(0.5, 4);  // 0.5 eV/atom over 4 atoms = 2 eV total
  EXPECT_TRUE(mon.enabled());
  mon.reset(-10.0);
  EXPECT_TRUE(mon.admissible(-9.0));   // |dE| = 1 eV < 2
  EXPECT_FALSE(mon.admissible(-7.0));  // |dE| = 3 eV > 2
  mon.accept(-9.0);
  EXPECT_TRUE(mon.admissible(-8.0));  // measured against the new reference
  EXPECT_NEAR(mon.cumulative_drift_per_atom(), 0.25, 1e-12);

  EnergyDriftMonitor off(0.0, 4);
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.admissible(1e9));
}

TEST(Watchdog, OscillationDetectorFiresOnThrash) {
  OscillationDetector osc(4);
  // Accept/reject alternation around a constant energy: fires once the
  // window is full.
  bool fired = false;
  for (int i = 0; i < 8 && !fired; ++i) {
    fired = osc.push(i % 2 == 0, -5.0);
  }
  EXPECT_TRUE(fired);

  // Steady downhill progress never fires.
  OscillationDetector good(4);
  double e = 0.0;
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(good.push(true, e));
    e -= 1.0;
  }
}

// ------------------------------------------------------------- Quantize --

TEST(Quantize, NonFiniteWeightsAreReportedNotPropagated) {
  Tensor t = Tensor::from_vector({1.0f, -2.0f,
                                  std::numeric_limits<float>::quiet_NaN(),
                                  std::numeric_limits<float>::infinity()},
                                 {4});
  float scale = 0.0f;
  index_t nonfinite = 0;
  auto codes = model::quantize_tensor(t, scale, &nonfinite);
  EXPECT_EQ(nonfinite, 2);
  EXPECT_TRUE(std::isfinite(scale));
  EXPECT_NEAR(scale, 2.0f / 127.0f, 1e-6);
  const float* p = t.data();
  for (index_t i = 0; i < t.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(p[i])) << "element " << i;
  }
  EXPECT_EQ(p[2], 0.0f);
  EXPECT_EQ(p[3], 0.0f);
  EXPECT_EQ(codes[2], 0);
  EXPECT_EQ(codes[3], 0);
}

TEST(Quantize, ReportCountsPoisonedModel) {
  model::CHGNet net(tiny_config(true), 4);
  auto params = net.named_parameters();
  ASSERT_FALSE(params.empty());
  params[0].second.node()->value.data()[0] =
      std::numeric_limits<float>::quiet_NaN();
  auto rep = model::quantize_for_inference(net);
  EXPECT_EQ(rep.nonfinite, 1);
  EXPECT_TRUE(std::isfinite(rep.mean_abs_error));
  EXPECT_TRUE(std::isfinite(rep.max_abs_error));
}

// --------------------------------------------------------------- Engine --

TEST(Engine, ServesValidCrystal) {
  model::CHGNet net(tiny_config(true), 5);
  InferenceEngine eng(net);
  data::Crystal c = small_crystal();
  auto r = eng.predict(c);
  ASSERT_TRUE(r.ok()) << r.error().message;
  const Prediction& p = r.value();
  EXPECT_TRUE(std::isfinite(p.energy));
  ASSERT_EQ(p.forces.size(), static_cast<std::size_t>(c.natoms()));
  for (const auto& f : p.forces) {
    for (int d = 0; d < 3; ++d) EXPECT_TRUE(std::isfinite(f[d]));
  }
  EXPECT_FALSE(p.degraded);
  EXPECT_EQ(eng.stats().served, 1u);
}

TEST(Engine, RejectsInvalidInputBeforeModel) {
  model::CHGNet net(tiny_config(true), 5);
  InferenceEngine eng(net);
  data::Crystal c = small_crystal();
  c.lattice[1] = c.lattice[0];
  auto r = eng.predict(c);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidInput);
  EXPECT_EQ(eng.stats().rejected_invalid, 1u);
  EXPECT_EQ(eng.stats().served, 0u);
}

TEST(Engine, DeadlineZeroTimesOut) {
  model::CHGNet net(tiny_config(true), 5);
  InferenceEngine eng(net);
  auto r = eng.predict(small_crystal(), /*deadline_ms=*/0.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kTimeout);
  EXPECT_EQ(eng.stats().timeouts, 1u);
}

TEST(Engine, StragglerLatencyCountsAgainstDeadline) {
  model::CHGNet net(tiny_config(true), 5);
  EngineConfig cfg;
  cfg.base_latency_ms = 10.0;
  InferenceEngine eng(net, cfg);
  parallel::FaultPlan plan;
  plan.events.push_back({parallel::FaultKind::kStraggler, /*iteration=*/0,
                         /*device=*/0, /*factor=*/1e4, /*duration=*/1});
  eng.set_fault_plan(&plan);
  // 10 ms * 1e4 = 100 s of simulated device latency blows the budget.
  auto r = eng.predict(small_crystal(), /*deadline_ms=*/1000.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kTimeout);
}

TEST(Engine, TransientFaultRetriedWithBackoff) {
  model::CHGNet net(tiny_config(true), 5);
  perf::reset_events();
  InferenceEngine eng(net);
  parallel::FaultPlan plan;
  // Request 0 fails its first two attempts, then succeeds.
  plan.events.push_back({parallel::FaultKind::kDeviceFailure, /*iteration=*/0,
                         /*device=*/0, /*factor=*/1.0, /*duration=*/2});
  eng.set_fault_plan(&plan);
  auto r = eng.predict(small_crystal());
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().retries, 2);
  EXPECT_GE(r.value().latency_ms, 0.5 + 1.0);  // backoff 0.5 * (2^0 + 2^1)
  EXPECT_EQ(eng.stats().retries, 2u);
  EXPECT_EQ(perf::event_count("serve.retry"), 2u);

  // Request 1 is clean.
  auto r2 = eng.predict(small_crystal(1));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().retries, 0);
}

TEST(Engine, PersistentFaultExhaustsRetries) {
  model::CHGNet net(tiny_config(true), 5);
  EngineConfig cfg;
  cfg.max_retries = 3;
  InferenceEngine eng(net, cfg);
  parallel::FaultPlan plan;
  plan.events.push_back({parallel::FaultKind::kDeviceFailure, /*iteration=*/0,
                         /*device=*/0, /*factor=*/1.0, /*duration=*/10});
  eng.set_fault_plan(&plan);
  auto r = eng.predict(small_crystal());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kOverloaded);
  EXPECT_EQ(eng.stats().overloaded, 1u);
}

TEST(Engine, QuantizedFaultFallsBackToFp32) {
  model::CHGNet net(tiny_config(true), 6);
  perf::reset_events();
  EngineConfig cfg;
  cfg.quantize = true;
  InferenceEngine eng(net, cfg);
  ASSERT_NE(eng.quantized_replica(), nullptr);

  // Healthy replica: the quantized path serves, not degraded.
  auto r0 = eng.predict(small_crystal());
  ASSERT_TRUE(r0.ok()) << r0.error().message;
  EXPECT_FALSE(r0.value().degraded);

  // Poison the replica *after* construction (the quantizer itself clamps
  // non-finite weights, so a fault must be injected into the live replica).
  poison(*eng.quantized_replica());
  auto r1 = eng.predict(small_crystal());
  ASSERT_TRUE(r1.ok()) << r1.error().message;
  EXPECT_TRUE(r1.value().degraded);
  EXPECT_TRUE(std::isfinite(r1.value().energy));
  EXPECT_EQ(eng.stats().degraded, 1u);
  EXPECT_EQ(perf::event_count("serve.fp32_fallback"), 1u);
}

TEST(Engine, StrictModeRefusesDegradedReply) {
  model::CHGNet net(tiny_config(true), 6);
  EngineConfig cfg;
  cfg.quantize = true;
  cfg.strict = true;
  InferenceEngine eng(net, cfg);
  poison(*eng.quantized_replica());
  auto r = eng.predict(small_crystal());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kDegraded);
}

TEST(Engine, BothPathsPoisonedIsNumericFault) {
  model::CHGNet net(tiny_config(true), 6);
  poison(net);  // fp32 model itself is bad: nothing to degrade to
  InferenceEngine eng(net);
  auto r = eng.predict(small_crystal());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNumericFault);
  EXPECT_EQ(eng.stats().numeric_faults, 1u);
}

TEST(Engine, QueueOverloadAndDrain) {
  model::CHGNet net(tiny_config(true), 5);
  EngineConfig cfg;
  cfg.queue_capacity = 2;
  InferenceEngine eng(net, cfg);
  EXPECT_TRUE(eng.submit(small_crystal(1)).ok());
  EXPECT_TRUE(eng.submit(small_crystal(2)).ok());
  auto rejected = eng.submit(small_crystal(3));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), ErrorCode::kOverloaded);
  EXPECT_EQ(eng.queue_depth(), 2u);

  auto replies = eng.drain();
  ASSERT_EQ(replies.size(), 2u);
  for (const auto& r : replies) {
    EXPECT_TRUE(r.ok()) << r.error().message;
  }
  EXPECT_EQ(eng.queue_depth(), 0u);
}

TEST(Engine, QueuedDeadlineExpiresWithoutForward) {
  model::CHGNet net(tiny_config(true), 5);
  InferenceEngine eng(net);
  ASSERT_TRUE(eng.submit(small_crystal(), /*deadline_ms=*/0.0).ok());
  auto replies = eng.drain();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_FALSE(replies[0].ok());
  EXPECT_EQ(replies[0].code(), ErrorCode::kTimeout);
  EXPECT_EQ(eng.stats().served, 0u);
}

// ------------------------------------------------------------ MD hardening --

TEST(MDServe, CreateRejectsInvalidCrystal) {
  model::CHGNet net(tiny_config(true), 7);
  data::Crystal c = small_crystal();
  c.species[0] = 0;
  auto sim = md::MDSimulator::create(net, c, {});
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(sim.code(), ErrorCode::kInvalidInput);
  // Legacy ctor throws instead.
  EXPECT_THROW(md::MDSimulator(net, c, {}), Error);
}

TEST(MDServe, CreateReportsPoisonedModel) {
  model::CHGNet net(tiny_config(true), 7);
  poison(net);
  auto sim = md::MDSimulator::create(net, small_crystal(), {});
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(sim.code(), ErrorCode::kNumericFault);
}

TEST(MDServe, ForceExplosionGuardAborts) {
  model::CHGNet net(tiny_config(true), 7);
  perf::reset_events();
  md::MDConfig cfg;
  cfg.max_force_ev_a = 1e-9;  // everything is an explosion
  cfg.max_dt_halvings = 0;    // abort on the first fault
  md::MDSimulator sim(net, small_crystal(), cfg);
  const double e0 = sim.total_energy();
  auto r = sim.try_step(1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNumericFault);
  EXPECT_NE(r.error().message.find("force explosion"), std::string::npos);
  ASSERT_TRUE(sim.last_fault().has_value());
  EXPECT_GT(sim.last_fault()->fmax, 0.0);
  // The committed state rolled back: nothing advanced, energy unchanged.
  EXPECT_EQ(sim.steps_taken(), 0);
  EXPECT_NEAR(sim.total_energy(), e0, 1e-12);
  EXPECT_EQ(perf::event_count("md.watchdog_abort"), 1u);
}

TEST(MDServe, DriftAbortSpendsAllHalvings) {
  model::CHGNet net(tiny_config(false), 3);
  perf::reset_events();
  md::MDConfig cfg;
  cfg.dt_fs = 0.5;
  cfg.init_temperature_k = 150.0;
  cfg.max_drift_ev_per_atom = 1e-15;  // unattainably tight
  cfg.max_dt_halvings = 2;
  md::MDSimulator sim(net, small_crystal(910), cfg);
  auto r = sim.try_step(1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNumericFault);
  EXPECT_NE(r.error().message.find("energy drift"), std::string::npos);
  EXPECT_EQ(sim.dt_halvings_total(), 2);
  EXPECT_NEAR(sim.dt_current(), 0.125, 1e-12);
  EXPECT_EQ(perf::event_count("md.dt_halved"), 2u);
  EXPECT_EQ(perf::event_count("md.watchdog_abort"), 1u);
  EXPECT_EQ(sim.steps_taken(), 0);
}

TEST(MDServe, DtHalvingRecoversTrajectory) {
  // Derivative-readout NVE: at dt = 8 fs the first step of this seeded
  // system drifts ~2e-2 eV/atom, at dt = 4 fs only ~4e-3 (measured; the
  // first attempt is fully deterministic because the faulted attempt rolls
  // the state back bit-exactly).  A 5e-3 bound therefore faults once,
  // halves dt, and the retried step commits cleanly.
  model::CHGNet net(tiny_config(false), 3);
  md::MDConfig cfg;
  cfg.dt_fs = 8.0;
  cfg.init_temperature_k = 150.0;
  cfg.seed = 11;
  cfg.max_drift_ev_per_atom = 5e-3;
  cfg.max_dt_halvings = 8;
  cfg.dt_recover_steps = 0;  // pin the reduced dt
  auto made = md::MDSimulator::create(net, small_crystal(7), cfg);
  ASSERT_TRUE(made.ok()) << made.error().message;
  md::MDSimulator sim = std::move(made).value();
  auto r = sim.try_step(1);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(sim.steps_taken(), 1);
  EXPECT_EQ(sim.dt_halvings_total(), 1);
  EXPECT_NEAR(sim.dt_current(), 4.0, 1e-12);
  EXPECT_FALSE(sim.last_fault().has_value());
  EXPECT_TRUE(std::isfinite(sim.total_energy()));

  // With recovery enabled, the clean retried step immediately counts
  // toward the streak and dt doubles back to the configured value.
  md::MDConfig rec = cfg;
  rec.dt_recover_steps = 1;
  md::MDSimulator sim2(net, small_crystal(7), rec);
  ASSERT_TRUE(sim2.try_step(1).ok());
  EXPECT_EQ(sim2.dt_halvings_total(), 1);
  EXPECT_NEAR(sim2.dt_current(), 8.0, 1e-12);
}

TEST(MDServe, VerletFallbackOnPoisonedModel) {
  model::CHGNet net(tiny_config(true), 7);
  perf::reset_events();
  md::MDConfig cfg;
  cfg.verlet_skin = 1.0;
  cfg.max_dt_halvings = 0;
  md::MDSimulator sim(net, small_crystal(), cfg);
  // Poison the model mid-trajectory: the Verlet path faults, falls back to
  // a full rebuild (also poisoned), and surfaces a typed error.
  poison(net);
  auto r = sim.try_step(1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNumericFault);
  EXPECT_GE(sim.verlet_fallbacks(), 1);
  EXPECT_GE(perf::event_count("md.verlet_fallback"), 1u);
  EXPECT_EQ(sim.steps_taken(), 0);
}

// ----------------------------------------------------------------- Relax --

TEST(RelaxServe, RejectsInvalidAndPoisoned) {
  model::CHGNet net(tiny_config(true), 8);
  data::Crystal bad = small_crystal();
  bad.frac[0][0] = kNaN;
  auto r = md::try_relax(net, bad, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidInput);

  poison(net);
  data::Crystal c = small_crystal();
  auto r2 = md::try_relax(net, c, {});
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.code(), ErrorCode::kNumericFault);
  // Legacy API throws the same condition.
  data::Crystal c2 = small_crystal();
  EXPECT_THROW(md::relax(net, c2, {}), Error);
}

TEST(RelaxServe, ConvergenceOnFinalStepIsReported) {
  // Regression for the off-by-one where a run converging exactly on its
  // last allowed iteration was reported unconverged: rerun with max_steps
  // set to the step count the first run needed.
  model::CHGNet net(tiny_config(false), 9);
  md::RelaxConfig cfg;
  cfg.fmax_tol = 0.5;
  cfg.max_steps = 200;
  data::Crystal c1 = small_crystal(42);
  auto full = md::try_relax(net, c1, cfg);
  ASSERT_TRUE(full.ok()) << full.error().message;
  ASSERT_TRUE(full.value().converged);
  ASSERT_GT(full.value().steps, 0);
  md::RelaxConfig tight = cfg;
  tight.max_steps = full.value().steps;
  data::Crystal c2 = small_crystal(42);
  auto exact = md::try_relax(net, c2, tight);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact.value().converged);
  EXPECT_LE(exact.value().final_fmax, cfg.fmax_tol);
}

TEST(RelaxServe, OscillationDetectorStopsThrashingRun) {
  // This seeded system's line search alternates accept/reject around a
  // plateau it cannot improve; the detector must stop it early with the
  // oscillating flag instead of burning the full step budget.
  model::CHGNet net(tiny_config(false), 9);
  md::RelaxConfig cfg;
  cfg.fmax_tol = 0.2;
  cfg.max_steps = 200;
  data::Crystal c = small_crystal(5);
  auto r = md::try_relax(net, c, cfg);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_TRUE(r.value().oscillating);
  EXPECT_FALSE(r.value().converged);
  EXPECT_LT(r.value().steps, cfg.max_steps);
}

// ------------------------------------------------------------------ Fuzz --

TEST(Fuzz, EveryCorruptionDiesAsTypedInvalidInput) {
  model::CHGNet net(tiny_config(true), 10);
  InferenceEngine eng(net);
  Rng rng(123);
  data::GeneratorConfig gen;
  gen.min_atoms = 2;
  gen.max_atoms = 10;
  int corrupted = 0, valid_ok = 0;
  for (int i = 0; i < 200; ++i) {
    data::Crystal c;
    const Corruption kind = fuzz_crystal(rng, c, 0.6, gen);
    auto r = eng.predict(c);
    if (kind == Corruption::kNone) {
      // A generated crystal may rarely violate the strict serving limits;
      // it must then be rejected as invalid input, never crash.
      if (r.ok()) {
        ++valid_ok;
        EXPECT_TRUE(std::isfinite(r.value().energy));
        for (const auto& f : r.value().forces) {
          for (int d = 0; d < 3; ++d) EXPECT_TRUE(std::isfinite(f[d]));
        }
      } else {
        EXPECT_EQ(r.code(), ErrorCode::kInvalidInput) << r.error().message;
      }
      continue;
    }
    ++corrupted;
    ASSERT_FALSE(r.ok()) << "corruption " << to_string(kind)
                         << " slipped through validation";
    EXPECT_EQ(r.code(), ErrorCode::kInvalidInput)
        << to_string(kind) << ": " << r.error().message;
  }
  EXPECT_GT(corrupted, 50);
  EXPECT_GT(valid_ok, 20);
  EXPECT_EQ(eng.stats().rejected_invalid, static_cast<std::uint64_t>(
      eng.stats().submitted - eng.stats().served));
}

}  // namespace
}  // namespace fastchg::serve
