// Unit tests for the nn layer: parameter registry, Linear/PackedLinear
// equivalence, LayerNorm (composed vs fused), GatedMLP (reference vs fused),
// Embedding -- including gradient checks on the fused custom kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "nn/embedding.hpp"
#include "nn/gated_mlp.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "perf/counters.hpp"

namespace fastchg::nn {
namespace {

using namespace ag::ops;
using ag::GradCheckOptions;
using ag::gradcheck;
using ag::gradcheck_double;
using ag::Var;

Var random_var(Shape shape, Rng& rng, bool rg = false) {
  Tensor t = Tensor::empty(std::move(shape));
  rng.fill_uniform(t, -1.0f, 1.0f);
  return Var(std::move(t), rg);
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_TRUE(same_shape(a.shape(), b.shape()))
      << shape_str(a.shape()) << " vs " << shape_str(b.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  for (index_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(pa[i], pb[i], tol) << "at element " << i;
  }
}

TEST(Module, ParameterRegistryNamesAndCounts) {
  Rng rng(1);
  GatedMLP mlp(8, 4, rng);
  auto named = mlp.named_parameters();
  // 2 linears (w+b) + 2 layernorms (gamma+beta) = 8 parameters.
  EXPECT_EQ(named.size(), 8u);
  EXPECT_EQ(named[0].first, "core_fc.w");
  EXPECT_EQ(mlp.num_parameters(), 2 * (8 * 4 + 4) + 2 * (4 + 4));
}

TEST(Module, ZeroGradClearsAll) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  Var x = random_var({4, 3}, rng);
  ag::backward(sum_all(lin.forward(x)));
  EXPECT_TRUE(lin.weight().has_grad());
  lin.zero_grad();
  for (float v : lin.weight().grad().to_vector()) EXPECT_EQ(v, 0.0f);
}

TEST(Module, CopyParametersFrom) {
  Rng r1(1), r2(2);
  Linear a(3, 2, r1), b(3, 2, r2);
  EXPECT_NE(a.weight().value().to_vector(), b.weight().value().to_vector());
  b.copy_parameters_from(a);
  EXPECT_EQ(a.weight().value().to_vector(), b.weight().value().to_vector());
}

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(3);
  Linear lin(4, 5, rng);
  Var x = random_var({7, 4}, rng);
  Var y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{7, 5}));
  Linear nobias(4, 5, rng, /*bias=*/false);
  EXPECT_FALSE(nobias.bias().defined());
}

TEST(Linear, GradCheck) {
  Rng rng(4);
  Linear lin(3, 2, rng);
  Var x = random_var({5, 3}, rng, true);
  GradCheckOptions opt;
  auto r = gradcheck(
      [&] { return sum_all(square(lin.forward(x))); },
      {lin.weight(), lin.bias(), x}, opt);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(PackedLinear, MatchesIndividualHeads) {
  Rng rng(5);
  PackedLinear packed(6, {4, 4, 4}, rng);
  Var x = random_var({9, 6}, rng);
  Var all = packed.forward(x);
  EXPECT_EQ(all.shape(), (Shape{9, 12}));
  // Heads must equal the slice of a plain matmul against the same columns.
  Var w = packed.named_parameters()[0].second;
  Var b = packed.named_parameters()[1].second;
  Var manual = add(matmul(x, w), b);
  for (std::size_t h = 0; h < 3; ++h) {
    expect_close(packed.head(h, all).value(),
                 narrow(manual, 1, static_cast<index_t>(4 * h), 4).value());
  }
}

TEST(PackedLinear, OneGemmInsteadOfK) {
  Rng rng(6);
  PackedLinear packed(6, {4, 4, 4}, rng);
  Var x = random_var({9, 6}, rng);
  perf::reset_kernels();
  perf::set_per_op(true);
  (void)packed.forward(x);
  EXPECT_EQ(perf::counters().per_op.at("matmul"), 1u);
  perf::set_per_op(false);
  perf::reset_kernels();
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln(8);
  Rng rng(7);
  Var x = random_var({5, 8}, rng);
  Var y = ln.forward(x);
  // With gamma=1, beta=0 each row has ~zero mean, ~unit variance.
  const float* p = y.value().data();
  for (index_t r = 0; r < 5; ++r) {
    double mean = 0.0, var = 0.0;
    for (index_t c = 0; c < 8; ++c) mean += p[r * 8 + c];
    mean /= 8;
    for (index_t c = 0; c < 8; ++c) {
      const double d = p[r * 8 + c] - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, FusedMatchesComposed) {
  Rng rng(8);
  LayerNorm ref(16), fused(16, /*fused=*/true);
  fused.copy_parameters_from(ref);
  Var x = random_var({10, 16}, rng);
  expect_close(ref.forward(x).value(), fused.forward(x).value(), 1e-5f);
}

TEST(LayerNorm, FusedIsOneKernel) {
  Rng rng(9);
  LayerNorm ref(16), fused(16, /*fused=*/true);
  Var x = random_var({10, 16}, rng);
  perf::reset_kernels();
  (void)fused.forward(x);
  const auto fused_kernels = perf::counters().kernel_launches;
  perf::reset_kernels();
  (void)ref.forward(x);
  const auto ref_kernels = perf::counters().kernel_launches;
  EXPECT_EQ(fused_kernels, 1u);
  EXPECT_GT(ref_kernels, 5u);
  perf::reset_kernels();
}

TEST(LayerNorm, FusedGradCheck) {
  Rng rng(10);
  LayerNorm fused(6, /*fused=*/true);
  Var x = random_var({4, 6}, rng, true);
  auto params = fused.parameters();
  GradCheckOptions opt;
  auto r = gradcheck(
      [&] { return sum_all(square(fused.forward(x))); },
      {x, params[0], params[1]}, opt);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(LayerNorm, FusedDoubleBackward) {
  Rng rng(11);
  LayerNorm fused(5, /*fused=*/true);
  Var x = random_var({3, 5}, rng, true);
  GradCheckOptions opt;
  auto r = gradcheck_double(
      [&] { return sum_all(square(fused.forward(x))); }, {x}, opt);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GatedMLP, FusedMatchesReference) {
  Rng rng(12);
  GatedMLP ref(10, 6, rng, /*fused=*/false);
  GatedMLP fused(10, 6, rng, /*fused=*/true);
  fused.copy_parameters_from(ref);
  Var x = random_var({8, 10}, rng);
  expect_close(ref.forward(x).value(), fused.forward(x).value(), 1e-5f);
}

TEST(GatedMLP, FusedLaunchesFarFewerKernels) {
  Rng rng(13);
  GatedMLP ref(10, 6, rng, false), fused(10, 6, rng, true);
  Var x = random_var({8, 10}, rng);
  perf::reset_kernels();
  (void)ref.forward(x);
  const auto ref_k = perf::counters().kernel_launches;
  perf::reset_kernels();
  (void)fused.forward(x);
  const auto fused_k = perf::counters().kernel_launches;
  EXPECT_LT(fused_k * 2, ref_k);  // at least 2x fewer launches
  perf::reset_kernels();
}

TEST(GatedMLP, FusedGradCheckAllParams) {
  Rng rng(14);
  GatedMLP fused(4, 3, rng, /*fused=*/true);
  Var x = random_var({5, 4}, rng, true);
  std::vector<ag::Var> leaves = fused.parameters();
  leaves.push_back(x);
  GradCheckOptions opt;
  auto r = gradcheck(
      [&] { return sum_all(square(fused.forward(x))); }, leaves, opt);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GatedMLP, FusedDoubleBackward) {
  Rng rng(15);
  GatedMLP fused(4, 3, rng, /*fused=*/true);
  Var x = random_var({4, 4}, rng, true);
  GradCheckOptions opt;
  auto r = gradcheck_double(
      [&] { return sum_all(square(fused.forward(x))); }, {x}, opt);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GatedMLP, ReferenceGradCheck) {
  Rng rng(16);
  GatedMLP ref(4, 3, rng, /*fused=*/false);
  Var x = random_var({5, 4}, rng, true);
  std::vector<ag::Var> leaves = ref.parameters();
  leaves.push_back(x);
  GradCheckOptions opt;
  auto r = gradcheck(
      [&] { return sum_all(square(ref.forward(x))); }, leaves, opt);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GatedMLP, FusedAndReferenceGradsAgree) {
  Rng rng(17);
  GatedMLP ref(6, 4, rng, false), fused(6, 4, rng, true);
  fused.copy_parameters_from(ref);
  Var x = random_var({7, 6}, rng);
  auto grads_of = [&](GatedMLP& m) {
    m.zero_grad();
    ag::backward(sum_all(square(m.forward(x))));
    std::vector<Tensor> out;
    for (auto& p : m.parameters()) out.push_back(p.grad().clone());
    return out;
  };
  auto gr = grads_of(ref);
  auto gf = grads_of(fused);
  ASSERT_EQ(gr.size(), gf.size());
  for (std::size_t i = 0; i < gr.size(); ++i) {
    expect_close(gr[i], gf[i], 2e-3f);
  }
}

TEST(Embedding, LookupAndGrad) {
  Rng rng(18);
  Embedding emb(10, 4, rng);
  Var out = emb.forward({3, 3, 7});
  EXPECT_EQ(out.shape(), (Shape{3, 4}));
  ag::backward(sum_all(out));
  const Tensor& g = emb.parameters()[0].grad();
  // Row 3 used twice, row 7 once, others zero.
  EXPECT_FLOAT_EQ(g.data()[3 * 4], 2.0f);
  EXPECT_FLOAT_EQ(g.data()[7 * 4], 1.0f);
  EXPECT_FLOAT_EQ(g.data()[0], 0.0f);
}

}  // namespace
}  // namespace fastchg::nn
