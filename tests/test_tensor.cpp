// Unit tests for the core tensor type and the perf accounting hooks.
#include <gtest/gtest.h>

#include "autograd/ops.hpp"
#include "core/parallel_for.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "perf/counters.hpp"

namespace fastchg {
namespace {

TEST(Tensor, ZerosShapeAndValues) {
  Tensor t = Tensor::zeros({3, 4});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 3);
  EXPECT_EQ(t.size(1), 4);
  EXPECT_EQ(t.numel(), 12);
  for (float v : t.to_vector()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullAndScalar) {
  Tensor t = Tensor::full({2, 2}, 3.5f);
  for (float v : t.to_vector()) EXPECT_EQ(v, 3.5f);
  EXPECT_FLOAT_EQ(Tensor::scalar(-2.0f).item(), -2.0f);
}

TEST(Tensor, FromVectorRoundTrip) {
  std::vector<float> v{1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::from_vector(v, {2, 3});
  EXPECT_EQ(t.to_vector(), v);
}

TEST(Tensor, FromVectorSizeMismatchThrows) {
  EXPECT_THROW(Tensor::from_vector({1, 2, 3}, {2, 2}), Error);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4}, {2, 2});
  Tensor r = t.reshape({4});
  EXPECT_TRUE(t.shares_storage(r));
  r.data()[0] = 9.0f;
  EXPECT_EQ(t.to_vector()[0], 9.0f);
}

TEST(Tensor, ReshapeBadNumelThrows) {
  Tensor t = Tensor::zeros({2, 2});
  EXPECT_THROW(t.reshape({3}), Error);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t = Tensor::from_vector({1, 2}, {2});
  Tensor c = t.clone();
  EXPECT_FALSE(t.shares_storage(c));
  c.data()[0] = 7.0f;
  EXPECT_EQ(t.to_vector()[0], 1.0f);
}

TEST(Tensor, AddInPlaceWithAlpha) {
  Tensor a = Tensor::from_vector({1, 2, 3}, {3});
  Tensor b = Tensor::from_vector({10, 20, 30}, {3});
  a.add_(b, 0.5f);
  EXPECT_EQ(a.to_vector(), (std::vector<float>{6, 12, 18}));
}

TEST(Tensor, MulInPlace) {
  Tensor a = Tensor::from_vector({1, -2}, {2});
  a.mul_(-3.0f);
  EXPECT_EQ(a.to_vector(), (std::vector<float>{-3, 6}));
}

TEST(Tensor, ItemRequiresSingleElement) {
  EXPECT_THROW(Tensor::zeros({2}).item(), Error);
}

TEST(Tensor, UndefinedTensorThrowsOnAccess) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.data(), Error);
}

TEST(PerfCounters, MemoryTrackerSeesAllocations) {
  perf::Counters& c = perf::counters();
  const std::uint64_t before = c.bytes_live;
  {
    Tensor t = Tensor::zeros({1024});
    EXPECT_EQ(c.bytes_live, before + 1024 * sizeof(float));
    EXPECT_GE(c.bytes_peak, c.bytes_live);
  }
  EXPECT_EQ(c.bytes_live, before);
}

TEST(PerfCounters, PeakResetsToLive) {
  perf::Counters& c = perf::counters();
  { Tensor big = Tensor::zeros({1 << 16}); }
  perf::reset_peak();
  EXPECT_EQ(c.bytes_peak, c.bytes_live);
}

TEST(PerfCounters, KernelCounterAndPerOp) {
  perf::reset_kernels();
  perf::set_per_op(true);
  perf::count_kernel("foo");
  perf::count_kernels("bar", 3);
  EXPECT_EQ(perf::counters().kernel_launches, 4u);
  EXPECT_EQ(perf::counters().per_op.at("foo"), 1u);
  EXPECT_EQ(perf::counters().per_op.at("bar"), 3u);
  perf::set_per_op(false);
  perf::reset_kernels();
}


TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(0, 1000, 8, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, 1, [&](index_t, index_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ThreadCountInvariantResults) {
  // Matmul partitions rows; any worker count must give identical bits.
  const int original = num_threads();
  Rng rng(99);
  Tensor a = Tensor::empty({64, 32});
  Tensor b = Tensor::empty({32, 48});
  rng.fill_uniform(a, -1.0f, 1.0f);
  rng.fill_uniform(b, -1.0f, 1.0f);
  auto matmul_vec = [&]() {
    ag::Var va(a.clone(), false), vb(b.clone(), false);
    return ag::ops::matmul(va, vb).value().to_vector();
  };
  set_num_threads(1);
  auto r1 = matmul_vec();
  set_num_threads(4);
  auto r4 = matmul_vec();
  set_num_threads(original);
  EXPECT_EQ(r1, r4);
}

TEST(ParallelFor, SetNumThreadsRoundTrip) {
  const int original = num_threads();
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(original);
  EXPECT_EQ(num_threads(), original);
}

TEST(Rng, Determinism) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, RandintBounds) {
  Rng r(7);
  for (int i = 0; i < 200; ++i) {
    index_t v = r.randint(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, FillNormalMoments) {
  Rng r(11);
  Tensor t = Tensor::empty({20000});
  r.fill_normal(t, 1.0f, 2.0f);
  double mean = 0.0;
  for (float v : t.to_vector()) mean += v;
  mean /= t.numel();
  EXPECT_NEAR(mean, 1.0, 0.1);
}

}  // namespace
}  // namespace fastchg
