// Tests for the bench-report format and the perf-regression gate that
// tools/perf_gate runs in CI: round-trip, tolerance behaviour (tight for
// deterministic metrics, loose for ".seconds"), loud failures on malformed
// or missing baselines, and trace determinism across same-seed runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "chgnet/model.hpp"
#include "core/error.hpp"
#include "data/dataset.hpp"
#include "perf/report.hpp"
#include "perf/trace.hpp"
#include "train/trainer.hpp"

namespace fastchg::perf {
namespace {

BenchReport make_report(std::map<std::string, double> metrics) {
  BenchReport r;
  r.bench = "unit";
  r.metrics = std::move(metrics);
  return r;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(BenchReport, JsonRoundTrip) {
  const BenchReport r = make_report({{"stage0.seconds", 1.25},
                                     {"stage0.kernels", 14911.0},
                                     {"stage0.peak_bytes", 3.71e8}});
  const BenchReport back = parse_bench_report(bench_report_json(r));
  EXPECT_EQ(back.bench, r.bench);
  ASSERT_EQ(back.metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(back.metrics.at("stage0.seconds"), 1.25);
  EXPECT_DOUBLE_EQ(back.metrics.at("stage0.kernels"), 14911.0);
}

TEST(BenchReport, FileRoundTripIsAtomicWrite) {
  const std::string path = temp_path("fastchg_test_report.json");
  const BenchReport r = make_report({{"a.seconds", 0.5}});
  write_bench_report(path, r);
  const BenchReport back = load_bench_report(path);
  EXPECT_EQ(back.bench, "unit");
  EXPECT_DOUBLE_EQ(back.metrics.at("a.seconds"), 0.5);
  std::filesystem::remove(path);
}

TEST(BenchReport, MissingFileThrowsNamingThePath) {
  try {
    load_bench_report("/nonexistent/dir/report.json");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("report.json"), std::string::npos);
  }
}

TEST(BenchReport, MalformedJsonThrowsLoudly) {
  EXPECT_THROW(parse_bench_report("not json at all"), Error);
  EXPECT_THROW(parse_bench_report("{\"metrics\": {}}"), Error);  // no bench
  EXPECT_THROW(parse_bench_report("{\"bench\": \"x\"}"), Error);  // no metrics
  EXPECT_THROW(
      parse_bench_report("{\"bench\": \"x\", \"metrics\": {\"k\": \"v\"}}"),
      Error);  // non-numeric metric
  const std::string path = temp_path("fastchg_test_malformed.json");
  std::ofstream(path) << "{\"bench\": \"x\", \"metrics\": {";  // truncated
  EXPECT_THROW(load_bench_report(path), Error);
  std::filesystem::remove(path);
}

TEST(PerfGate, PassesWithinTolerance) {
  const BenchReport base = make_report({{"k.kernels", 1000.0},
                                        {"t.seconds", 1.0}});
  // +10% on a deterministic metric and +80% on a time metric both sit
  // inside the (25%, 200%) tolerances.
  const BenchReport fresh = make_report({{"k.kernels", 1100.0},
                                         {"t.seconds", 1.8}});
  const GateResult g = gate_compare(base, fresh, 0.25, 2.0);
  EXPECT_TRUE(g.pass) << gate_table(g);
  ASSERT_EQ(g.findings.size(), 2u);
  for (const GateFinding& f : g.findings) {
    EXPECT_FALSE(f.regressed);
    EXPECT_FALSE(f.missing);
  }
}

TEST(PerfGate, FailsOnDeterministicSlowdown) {
  const BenchReport base = make_report({{"k.kernels", 1000.0}});
  const BenchReport fresh = make_report({{"k.kernels", 1400.0}});  // +40%
  const GateResult g = gate_compare(base, fresh, 0.25, 2.0);
  EXPECT_FALSE(g.pass);
  ASSERT_EQ(g.findings.size(), 1u);
  EXPECT_TRUE(g.findings[0].regressed);
  EXPECT_NEAR(g.findings[0].ratio, 1.4, 1e-12);
  EXPECT_NE(gate_table(g).find("FAIL (regression)"), std::string::npos);
}

TEST(PerfGate, TightenedBaselineFails) {
  // The CI acceptance case: halving every baseline value must trip the gate
  // even though the fresh run itself didn't change.
  const BenchReport fresh = make_report({{"k.kernels", 1000.0},
                                         {"m.peak_bytes", 2.0e8},
                                         {"t.seconds", 1.0}});
  BenchReport tightened = fresh;
  for (auto& [k, v] : tightened.metrics) v *= 0.5;
  EXPECT_FALSE(gate_compare(tightened, fresh, 0.25, 2.0).pass);
}

TEST(PerfGate, TimeMetricsGetTheLooseTolerance) {
  const BenchReport base = make_report({{"t.seconds", 1.0}});
  const BenchReport slow = make_report({{"t.seconds", 2.5}});
  // 2.5x is inside a 200% time tolerance but far outside 25%.
  EXPECT_TRUE(gate_compare(base, slow, 0.25, 2.0).pass);
  EXPECT_FALSE(gate_compare(base, slow, 0.25, 1.0).pass);
  EXPECT_TRUE(is_time_metric("t.seconds"));
  EXPECT_FALSE(is_time_metric("t.kernels"));
  EXPECT_FALSE(is_time_metric("seconds_total"));
}

TEST(PerfGate, MissingMetricIsACoverageRegression) {
  const BenchReport base = make_report({{"gone.kernels", 10.0},
                                        {"kept.kernels", 10.0}});
  const BenchReport fresh = make_report({{"kept.kernels", 10.0}});
  const GateResult g = gate_compare(base, fresh, 0.25, 2.0);
  EXPECT_FALSE(g.pass);
  bool saw_missing = false;
  for (const GateFinding& f : g.findings) {
    if (f.metric == "gone.kernels") saw_missing = f.missing;
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_NE(gate_table(g).find("MISSING"), std::string::npos);
}

TEST(PerfGate, ExtraFreshMetricsAreAllowed) {
  // New instrumentation must not fail the gate until the baseline is
  // regenerated to include it.
  const BenchReport base = make_report({{"k.kernels", 10.0}});
  const BenchReport fresh = make_report({{"k.kernels", 10.0},
                                         {"new.kernels", 5.0}});
  EXPECT_TRUE(gate_compare(base, fresh, 0.25, 2.0).pass);
}

TEST(PerfGate, ImprovementsPass) {
  const BenchReport base = make_report({{"k.kernels", 1000.0},
                                        {"t.seconds", 1.0}});
  const BenchReport fresh = make_report({{"k.kernels", 100.0},
                                         {"t.seconds", 0.1}});
  EXPECT_TRUE(gate_compare(base, fresh, 0.25, 2.0).pass);
}

// ---------------------------------------------------------------------------
// trace determinism: the span *structure* of a training step is a function
// of the config and seed, not of wall time -- two same-seed runs must
// produce identical span counts per phase (so bench reports built from span
// counts are reproducible inputs to the gate).
// ---------------------------------------------------------------------------

std::map<std::string, std::uint64_t> span_census(std::uint64_t seed) {
  model::ModelConfig cfg = model::ModelConfig::fast();
  cfg.feat_dim = 8;
  cfg.num_radial = 5;
  cfg.num_angular = 5;
  cfg.num_layers = 1;
  data::Dataset ds = data::Dataset::generate(12, 77);
  model::CHGNet net(cfg, seed);
  train::TrainConfig tc;
  tc.batch_size = 4;
  tc.epochs = 1;
  tc.shuffle_seed = seed;
  train::Trainer trainer(net, tc);
  std::vector<index_t> rows(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    rows[static_cast<std::size_t>(i)] = i;
  }
  trace_enable(1u << 15);
  trainer.train_epoch(ds, rows, 0);
  std::map<std::string, std::uint64_t> census;
  for (const TraceEvent& e : trace_events()) ++census[e.name];
  Trace::instance().shutdown();
  return census;
}

TEST(PerfGate, SameSeedTrainerStepsTraceIdentically) {
  const auto a = span_census(123);
  const auto b = span_census(123);
  EXPECT_EQ(a, b);
  // Sanity: the census actually saw the trainer phases.
  EXPECT_GT(a.at("train.step"), 0u);
  EXPECT_EQ(a.at("train.forward"), a.at("train.backward"));
  EXPECT_EQ(a.at("train.step"), a.at("train.data_prefetch"));
}

}  // namespace
}  // namespace fastchg::perf
