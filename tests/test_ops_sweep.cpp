// Parameterized property sweeps over the op x broadcast-pattern matrix:
// every elementwise binary op must be numerically correct (value + gradient
// + double backward) under every supported broadcast pattern, and every
// activation across input regimes.  One body, the full matrix.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "core/rng.hpp"

namespace fastchg::ag {
namespace {

using namespace ops;

enum class BinOp { kAdd, kSub, kMul, kDiv };
enum class Pattern { kSame, kRow, kRow1, kCol, kScalar };

const char* op_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kDiv: return "div";
  }
  return "?";
}

Var apply(BinOp op, const Var& a, const Var& b) {
  switch (op) {
    case BinOp::kAdd: return add(a, b);
    case BinOp::kSub: return sub(a, b);
    case BinOp::kMul: return mul(a, b);
    case BinOp::kDiv: return div(a, b);
  }
  return Var();
}

Shape second_shape(Pattern p) {
  switch (p) {
    case Pattern::kSame: return {4, 3};
    case Pattern::kRow: return {3};
    case Pattern::kRow1: return {1, 3};
    case Pattern::kCol: return {4, 1};
    case Pattern::kScalar: return {1};
  }
  return {};
}

class BinaryBroadcastSweep
    : public ::testing::TestWithParam<std::tuple<BinOp, Pattern>> {};

TEST_P(BinaryBroadcastSweep, ValueShapeAndBothGradOrders) {
  const auto [op, pattern] = GetParam();
  Rng rng(static_cast<std::uint64_t>(1000 + 10 * static_cast<int>(op) +
                                     static_cast<int>(pattern)));
  Tensor ta = Tensor::empty({4, 3});
  Tensor tb = Tensor::empty(second_shape(pattern));
  // Keep div well-conditioned: operands bounded away from zero.
  rng.fill_uniform(ta, 0.5f, 1.5f);
  rng.fill_uniform(tb, 0.5f, 1.5f);
  Var a(std::move(ta), true);
  Var b(std::move(tb), true);

  Var out = apply(op, a, b);
  ASSERT_EQ(out.shape(), (Shape{4, 3})) << op_name(op);

  // Spot-check one element against scalar arithmetic.
  const float av = a.value().data()[0];
  const float* pb = b.value().data();
  const float bv = pb[0];
  float expect = 0;
  switch (op) {
    case BinOp::kAdd: expect = av + bv; break;
    case BinOp::kSub: expect = av - bv; break;
    case BinOp::kMul: expect = av * bv; break;
    case BinOp::kDiv: expect = av / bv; break;
  }
  EXPECT_NEAR(out.value().data()[0], expect, 1e-6f);

  GradCheckOptions opt;
  auto first = gradcheck(
      [&] { return sum_all(square(apply(op, a, b))); }, {a, b}, opt);
  EXPECT_TRUE(first.ok) << op_name(op) << ": " << first.detail;

  opt.rtol = 8e-2f;
  auto second = gradcheck_double(
      [&] { return sum_all(square(apply(op, a, b))); }, {a, b}, opt);
  EXPECT_TRUE(second.ok) << op_name(op) << " (2nd order): " << second.detail;
}

INSTANTIATE_TEST_SUITE_P(
    OpsByPattern, BinaryBroadcastSweep,
    ::testing::Combine(::testing::Values(BinOp::kAdd, BinOp::kSub,
                                         BinOp::kMul, BinOp::kDiv),
                       ::testing::Values(Pattern::kSame, Pattern::kRow,
                                         Pattern::kRow1, Pattern::kCol,
                                         Pattern::kScalar)));

// ---------------------------------------------------------------------------
// activations across input regimes
// ---------------------------------------------------------------------------

enum class Act { kSigmoid, kSilu, kTanh };

class ActivationSweep
    : public ::testing::TestWithParam<std::tuple<Act, float>> {};

TEST_P(ActivationSweep, GradAndDoubleGradInEveryRegime) {
  const auto [act, center] = GetParam();
  Rng rng(77);
  Tensor t = Tensor::empty({10});
  rng.fill_uniform(t, center - 0.5f, center + 0.5f);
  Var x(std::move(t), true);
  auto f = [&, act = act]() -> Var {
    switch (act) {
      case Act::kSigmoid: return sum_all(sigmoid(x));
      case Act::kSilu: return sum_all(silu(x));
      case Act::kTanh: return sum_all(tanh_op(x));
    }
    return Var();
  };
  GradCheckOptions opt;
  auto first = gradcheck(f, {x}, opt);
  EXPECT_TRUE(first.ok) << first.detail;
  opt.rtol = 8e-2f;
  auto second = gradcheck_double(f, {x}, opt);
  EXPECT_TRUE(second.ok) << second.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, ActivationSweep,
    ::testing::Combine(::testing::Values(Act::kSigmoid, Act::kSilu,
                                         Act::kTanh),
                       // saturated-negative, linear, saturated-positive
                       ::testing::Values(-3.0f, 0.0f, 3.0f)));

}  // namespace
}  // namespace fastchg::ag
