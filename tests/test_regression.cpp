// Golden-value regression tests: fixed seeds -> exact expected outputs for
// both model variants, plus autograd error-path coverage.  These lock the
// numerics of the whole pipeline (generator -> oracle -> graphs -> model);
// any refactor that silently changes results trips them.
//
// Golden values recorded from the verified build (all property tests green:
// forces match dE/dx, stress matches strain derivatives, fused == unfused).
#include <gtest/gtest.h>

#include "autograd/ops.hpp"
#include "chgnet/model.hpp"
#include "data/batch.hpp"

namespace fastchg {
namespace {

using ag::Var;
using namespace ag::ops;

model::ModelConfig golden_config(bool fast) {
  model::ModelConfig cfg =
      fast ? model::ModelConfig::fast() : model::ModelConfig();
  cfg.feat_dim = 16;
  cfg.num_radial = 9;
  cfg.num_angular = 9;
  cfg.num_layers = 2;
  return cfg;
}

model::ModelOutput golden_forward(bool fast) {
  model::CHGNet net(golden_config(fast), 20250706);
  data::Dataset ds = data::Dataset::generate(3, 424242);
  data::Batch b = data::collate_indices(ds, {0, 1, 2});
  return net.forward(b, model::ForwardMode::kEval);
}

void expect_prefix(const std::vector<float>& actual,
                   const std::vector<float>& expect, float tol) {
  ASSERT_GE(actual.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(actual[i], expect[i], tol) << "element " << i;
  }
}

TEST(Golden, ReferenceModelOutputs) {
  auto out = golden_forward(false);
  expect_prefix(out.energy_per_atom.value().to_vector(),
                {2.204178f, 1.333560f, -2.084087f}, 2e-4f);
  expect_prefix(out.forces.value().to_vector(),
                {-0.150609f, -1.314823f, 0.730280f, -0.697075f, 0.444907f,
                 -0.981013f},
                5e-4f);
  expect_prefix(out.stress.value().to_vector(),
                {0.029136f, -0.002384f, 0.001799f}, 5e-4f);
  expect_prefix(out.magmom.value().to_vector(),
                {-7.291174f, -2.013751f, -6.096387f}, 5e-4f);
}

TEST(Golden, FastModelOutputs) {
  auto out = golden_forward(true);
  expect_prefix(out.energy_per_atom.value().to_vector(),
                {-2.143249f, -3.054014f, -1.773423f}, 2e-4f);
  expect_prefix(out.forces.value().to_vector(),
                {0.453487f, 0.278895f, -0.026867f, 0.178329f, 0.339942f,
                 1.015971f},
                5e-4f);
  expect_prefix(out.stress.value().to_vector(),
                {0.937765f, 7.154003f, 0.464174f}, 5e-4f);
  expect_prefix(out.magmom.value().to_vector(),
                {10.065499f, 6.174814f, 9.609716f}, 5e-4f);
}

TEST(Golden, GeneratorIsStable) {
  // The generator's RNG stream is part of the golden contract: changing it
  // invalidates every seed-pinned experiment.
  Rng rng(424242);
  data::Crystal c = data::random_crystal(rng);
  EXPECT_EQ(c.natoms(), 13);
  EXPECT_EQ(c.species[0], 30);
  EXPECT_NEAR(c.lattice[0][0], 5.2138, 1e-3);
}

// ---------------------------------------------------------------------------
// autograd error paths (failure injection)
// ---------------------------------------------------------------------------

TEST(Errors, BackwardOnConstantThrows) {
  Var c(Tensor::scalar(1.0f), false);
  EXPECT_THROW(ag::backward(c), Error);
}

TEST(Errors, BackwardSeedShapeMismatch) {
  Var x(Tensor::zeros({3}), true);
  Var y = square(x);
  EXPECT_THROW(ag::backward(y, Tensor::zeros({2})), Error);
}

TEST(Errors, MatmulRankAndDimChecks) {
  Var a(Tensor::zeros({4}), false);
  Var b(Tensor::zeros({4, 2}), false);
  EXPECT_THROW(matmul(a, b), Error);
  Var c(Tensor::zeros({2, 3}), false);
  Var d(Tensor::zeros({4, 2}), false);
  EXPECT_THROW(matmul(c, d), Error);
}

TEST(Errors, SumDimValidation) {
  Var x(Tensor::zeros({2, 3}), false);
  EXPECT_THROW(sum_dim(x, 2), Error);
  Var v(Tensor::zeros({5}), false);
  EXPECT_THROW(sum_dim(v, 0), Error);  // needs 2-D
}

TEST(Errors, NarrowOutOfRange) {
  Var x(Tensor::zeros({4, 2}), false);
  EXPECT_THROW(narrow(x, 0, 3, 2), Error);
  EXPECT_THROW(narrow(x, 1, 0, 3), Error);
}

TEST(Errors, CatEmptyAndMismatched) {
  EXPECT_THROW(cat({}, 0), Error);
  Var a(Tensor::zeros({2, 3}), false);
  Var b(Tensor::zeros({2, 4}), false);
  EXPECT_THROW(cat({a, b}, 0), Error);  // column mismatch on dim-0 concat
}

TEST(Errors, PadSliceBounds) {
  Var x(Tensor::zeros({3}), false);
  EXPECT_THROW(pad_slice(x, 0, 2, 4), Error);
}

TEST(Errors, IndexAddCountMismatch) {
  Var src(Tensor::zeros({3, 2}), false);
  EXPECT_THROW(index_add0(5, {0, 1}, src), Error);
}

TEST(Errors, UndefinedVarAccess) {
  Var v;
  EXPECT_FALSE(v.defined());
  EXPECT_THROW(v.value(), Error);
  EXPECT_THROW(v.detach(), Error);
}

}  // namespace
}  // namespace fastchg
