// Tests for the span tracer (perf/trace) and its exporters (perf/report):
// nesting, enable/disable semantics, ring overflow, thread-safety under
// parallel_for, Chrome trace_event schema, and the summary-table math.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/parallel_for.hpp"
#include "perf/counters.hpp"
#include "perf/report.hpp"
#include "perf/trace.hpp"

namespace fastchg::perf {
namespace {

const TraceEvent* find(const std::vector<TraceEvent>& evs, const char* name) {
  for (const TraceEvent& e : evs) {
    if (std::string(e.name) == name) return &e;
  }
  return nullptr;
}

/// Every test starts and ends with the tracer fully torn down; the tracer is
/// global state, so leaking an enabled ring into other tests would make the
/// suite order-dependent (CI runs ctest twice to catch exactly that).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Trace::instance().shutdown(); }
  void TearDown() override { Trace::instance().shutdown(); }
};

TEST_F(TraceTest, DisabledByDefaultAndInert) {
  EXPECT_FALSE(trace_enabled());
  {
    TraceSpan s("never.recorded", "test");
    trace_sim_span("also.never", "test", 0, 0.0, 1.0);
  }
  EXPECT_EQ(Trace::instance().total_recorded(), 0u);
  EXPECT_EQ(Trace::instance().capacity(), 0u);  // no ring allocated
  EXPECT_TRUE(trace_events().empty());
}

TEST_F(TraceTest, SpanOpenedWhileDisabledStaysInert) {
  // A span constructed before enable() must not record at destruction --
  // its start time was never taken.
  trace_enable();
  {
    trace_disable();
    TraceSpan s("opened.disabled", "test");
    trace_enable();
  }
  EXPECT_EQ(find(trace_events(), "opened.disabled"), nullptr);
}

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  trace_enable();
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan mid("mid", "test");
      TraceSpan inner("inner", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto evs = trace_events();
  const TraceEvent* outer = find(evs, "outer");
  const TraceEvent* mid = find(evs, "mid");
  const TraceEvent* inner = find(evs, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(mid->depth, 1);
  EXPECT_EQ(inner->depth, 2);
  // Children start no earlier and end no later than the parent.
  EXPECT_GE(mid->ts_us, outer->ts_us);
  EXPECT_LE(mid->ts_us + mid->dur_us, outer->ts_us + outer->dur_us + 1e-6);
  EXPECT_GE(inner->ts_us, mid->ts_us);
  EXPECT_GT(outer->dur_us, 0.0);
}

TEST_F(TraceTest, RingOverflowKeepsNewestAndCountsDropped) {
  trace_enable(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    trace_sim_span("tick", "test", 0, static_cast<double>(i), 0.5);
  }
  EXPECT_EQ(Trace::instance().total_recorded(), 20u);
  EXPECT_EQ(Trace::instance().dropped(), 12u);
  const auto evs = trace_events();
  ASSERT_EQ(evs.size(), 8u);
  // The survivors are the newest 8 (simulated starts 12..19).
  for (const TraceEvent& e : evs) EXPECT_GE(e.ts_us, 12.0 * 1e6);
}

TEST_F(TraceTest, ClearKeepsRingButDropsEvents) {
  trace_enable(16);
  trace_sim_span("before", "test", 0, 0.0, 1.0);
  trace_clear();
  EXPECT_TRUE(trace_events().empty());
  EXPECT_EQ(Trace::instance().capacity(), 16u);
  trace_sim_span("after", "test", 0, 0.0, 1.0);
  EXPECT_EQ(trace_events().size(), 1u);
}

TEST_F(TraceTest, ThreadSafeUnderParallelFor) {
  const int saved = num_threads();
  set_num_threads(4);
  trace_enable(/*capacity=*/4096);
  std::atomic<int> done{0};
  parallel_for(0, 256, 1, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      TraceSpan s("worker.item", "test");
      done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  set_num_threads(saved);
  EXPECT_EQ(done.load(), 256);
  EXPECT_EQ(Trace::instance().dropped(), 0u);
  const auto evs = trace_events();
  int workers = 0;
  for (const TraceEvent& e : evs) {
    if (std::string(e.name) == "worker.item") ++workers;
  }
  EXPECT_EQ(workers, 256);  // no span lost or torn under concurrency
}

TEST_F(TraceTest, SimSpansCarryDeviceLanes) {
  trace_enable();
  trace_sim_span("compute", "device", /*device=*/2, 1.5, 0.25);
  const auto evs = trace_events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].clock, TraceClock::kSim);
  EXPECT_EQ(evs[0].lane, 2);
  EXPECT_DOUBLE_EQ(evs[0].ts_us, 1.5e6);
  EXPECT_DOUBLE_EQ(evs[0].dur_us, 0.25e6);
}

TEST_F(TraceTest, ChromeTraceJsonSchema) {
  trace_enable();
  { TraceSpan s("wall.phase", "test"); }
  for (int d = 0; d < 4; ++d) {
    trace_sim_span("compute", "device", d, 0.0, 1.0);
  }
  const std::string json = chrome_trace_json(trace_events());
  EXPECT_TRUE(json_valid(json)) << json;
  // Top-level object format with complete-span events.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Metadata: two process groups and a named lane per virtual device.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("device 3"), std::string::npos);
  // Sim spans land in pid 1, wall spans in pid 0.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceRebasesWallTimestamps) {
  trace_enable();
  { TraceSpan s("first", "test"); }
  const std::string json = chrome_trace_json(trace_events());
  // Raw steady_clock timestamps are hours-to-days large; after rebasing the
  // earliest wall span must start at ts 0.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos) << json;
}

TEST_F(TraceTest, SummaryMathIsExact) {
  trace_enable();
  trace_sim_span("phase.a", "test", 0, 0.0, 1.0);
  trace_sim_span("phase.a", "test", 0, 1.0, 2.0);
  trace_sim_span("phase.a", "test", 0, 3.0, 3.0);
  trace_sim_span("phase.b", "test", 0, 6.0, 10.0);
  const auto rows = summarize(trace_events());
  ASSERT_EQ(rows.size(), 2u);
  // Sorted by total descending: b (10 s) before a (6 s).
  EXPECT_EQ(rows[0].name, "phase.b");
  EXPECT_EQ(rows[1].name, "phase.a");
  EXPECT_EQ(rows[1].count, 3u);
  EXPECT_NEAR(rows[1].total_s, 6.0, 1e-9);
  EXPECT_NEAR(rows[1].mean_s, 2.0, 1e-9);
  EXPECT_NEAR(rows[1].min_s, 1.0, 1e-9);
  EXPECT_NEAR(rows[1].max_s, 3.0, 1e-9);
  const std::string table = summary_table(rows);
  EXPECT_NE(table.find("phase.a"), std::string::npos);
  EXPECT_NE(table.find("phase.b"), std::string::npos);
}

TEST_F(TraceTest, CountersSnapshotAndReset) {
  // The bench-rep fix: snapshot() copies, reset() clears everything a rep
  // accumulates and rebases the peak watermark to live bytes.
  Counters& c = counters();
  c.reset();
  count_kernel("test_op");
  count_event("test_event");
  const Counters snap = c.snapshot();
  EXPECT_EQ(snap.kernel_launches, c.kernel_launches);
  const std::uint64_t live = c.bytes_live;
  c.reset();
  EXPECT_EQ(c.kernel_launches, 0u);
  EXPECT_EQ(c.alloc_count, 0u);
  EXPECT_TRUE(c.events.empty());
  EXPECT_TRUE(c.per_op.empty());
  EXPECT_EQ(c.bytes_peak, live);  // rebased, not zeroed: live data exists
  // The snapshot is an independent copy, untouched by the reset.
  EXPECT_EQ(snap.events.count("test_event"), 1u);
}

}  // namespace
}  // namespace fastchg::perf
