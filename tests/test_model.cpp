// Integration tests for the CHGNet/FastCHGNet model: output shapes,
// serial-vs-batched and fused-vs-unfused equivalence, energy/force/stress
// consistency of the derivative readout, rotation equivariance of the
// decoupled force head, parameter-count ordering, and double backward
// through the full model.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "chgnet/model.hpp"
#include "data/batch.hpp"
#include "data/dataset.hpp"
#include "perf/counters.hpp"

namespace fastchg::model {
namespace {

using namespace ag::ops;
using ag::Var;
using data::Batch;
using data::Crystal;
using data::Dataset;

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.feat_dim = 16;
  cfg.num_radial = 7;
  cfg.num_angular = 7;
  cfg.num_layers = 2;
  return cfg;
}

Dataset tiny_dataset(index_t n = 4, std::uint64_t seed = 77) {
  data::GeneratorConfig g;
  g.min_atoms = 3;
  g.max_atoms = 6;
  g.lognormal_mu = 1.5;
  return Dataset::generate(n, seed, g);
}

double total_energy(const Tensor& energy_per_atom,
                    const std::vector<index_t>& natoms) {
  double e = 0.0;
  for (index_t s = 0; s < energy_per_atom.size(0); ++s) {
    e += static_cast<double>(energy_per_atom.data()[s]) *
         static_cast<double>(natoms[static_cast<std::size_t>(s)]);
  }
  return e;
}

void expect_close(const Tensor& a, const Tensor& b, float tol,
                  const char* what) {
  ASSERT_TRUE(same_shape(a.shape(), b.shape())) << what;
  for (index_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << what << " elem " << i;
  }
}

TEST(Model, ReferenceForwardShapesAndFinite) {
  Dataset ds = tiny_dataset();
  Batch b = data::collate_indices(ds, {0, 1, 2, 3});
  CHGNet net(tiny_config(), 1);
  ModelOutput out = net.forward(b);
  EXPECT_EQ(out.energy_per_atom.shape(), (Shape{4, 1}));
  EXPECT_EQ(out.forces.shape(), (Shape{b.num_atoms, 3}));
  EXPECT_EQ(out.stress.shape(), (Shape{4, 9}));
  EXPECT_EQ(out.magmom.shape(), (Shape{b.num_atoms, 1}));
  for (const Var* v : {&out.energy_per_atom, &out.forces, &out.stress}) {
    for (float x : v->value().to_vector()) EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(Model, DecoupledForwardShapes) {
  Dataset ds = tiny_dataset();
  Batch b = data::collate_indices(ds, {0, 1});
  ModelConfig cfg = tiny_config();
  cfg.decoupled_heads = true;
  cfg.batched_basis = true;
  CHGNet net(cfg, 2);
  ModelOutput out = net.forward(b, ForwardMode::kEval);
  EXPECT_EQ(out.forces.shape(), (Shape{b.num_atoms, 3}));
  EXPECT_EQ(out.stress.shape(), (Shape{2, 9}));
  EXPECT_FALSE(out.energy_per_atom.requires_grad());  // eval runs grad-free
}

TEST(Model, BatchedBasisMatchesSerial) {
  Dataset ds = tiny_dataset(5, 31);
  Batch b = data::collate_indices(ds, {0, 1, 2, 3, 4});
  ModelConfig serial_cfg = tiny_config();
  ModelConfig batched_cfg = tiny_config();
  batched_cfg.batched_basis = true;
  CHGNet a(serial_cfg, 5), c(batched_cfg, 99);
  c.copy_parameters_from(a);
  ModelOutput oa = a.forward(b);
  ModelOutput oc = c.forward(b);
  expect_close(oa.energy_per_atom.value(), oc.energy_per_atom.value(), 1e-4f,
               "energy");
  expect_close(oa.forces.value(), oc.forces.value(), 2e-3f, "forces");
  expect_close(oa.stress.value(), oc.stress.value(), 2e-3f, "stress");
}

TEST(Model, FusedKernelsMatchUnfused) {
  Dataset ds = tiny_dataset(3, 32);
  Batch b = data::collate_indices(ds, {0, 1, 2});
  ModelConfig plain = tiny_config();
  plain.batched_basis = true;
  ModelConfig fused = plain;
  fused.fused_kernels = true;
  fused.factored_envelope = true;
  CHGNet a(plain, 6), c(fused, 6);
  c.copy_parameters_from(a);
  ModelOutput oa = a.forward(b);
  ModelOutput oc = c.forward(b);
  expect_close(oa.energy_per_atom.value(), oc.energy_per_atom.value(), 1e-4f,
               "energy");
  expect_close(oa.forces.value(), oc.forces.value(), 2e-3f, "forces");
  expect_close(oa.magmom.value(), oc.magmom.value(), 1e-4f, "magmom");
}

TEST(Model, FusedLaunchesFarFewerKernels) {
  Dataset ds = tiny_dataset(4, 33);
  Batch b = data::collate_indices(ds, {0, 1, 2, 3});
  CHGNet ref(ModelConfig::optimization_stage(0), 7);
  CHGNet fast(ModelConfig::optimization_stage(3), 7);
  perf::reset_kernels();
  (void)ref.forward(b);
  const auto ref_k = perf::counters().kernel_launches;
  perf::reset_kernels();
  (void)fast.forward(b);
  const auto fast_k = perf::counters().kernel_launches;
  perf::reset_kernels();
  EXPECT_LT(fast_k * 2, ref_k) << "fast " << fast_k << " vs ref " << ref_k;
}

TEST(Model, ForcesMatchNumericalEnergyGradient) {
  Dataset ds = tiny_dataset(1, 34);
  Batch b = data::collate_indices(ds, {0});
  ModelConfig cfg = tiny_config();
  cfg.batched_basis = true;
  CHGNet net(cfg, 8);
  ModelOutput out = net.forward(b, ForwardMode::kEval);
  const Tensor forces = out.forces.value().clone();
  const float h = 1e-3f;
  for (index_t atom = 0; atom < std::min<index_t>(b.num_atoms, 2); ++atom) {
    for (int d = 0; d < 3; ++d) {
      float* slot = b.cart.data() + atom * 3 + d;
      const float orig = *slot;
      *slot = orig + h;
      const double ep = total_energy(
          net.forward(b, ForwardMode::kEval).energy_per_atom.value(),
          b.natoms);
      *slot = orig - h;
      const double em = total_energy(
          net.forward(b, ForwardMode::kEval).energy_per_atom.value(),
          b.natoms);
      *slot = orig;
      const double fd = -(ep - em) / (2.0 * h);
      EXPECT_NEAR(forces.data()[atom * 3 + d], fd, 5e-3)
          << "atom " << atom << " dir " << d;
    }
  }
}

TEST(Model, StressMatchesNumericalStrainDerivative) {
  Dataset ds = tiny_dataset(1, 35);
  Batch b = data::collate_indices(ds, {0});
  ModelConfig cfg = tiny_config();
  cfg.batched_basis = true;
  CHGNet net(cfg, 9);
  const Tensor stress = net.forward(b, ForwardMode::kEval).stress.value().clone();
  const double vol = b.volumes[0];
  const float h = 1e-3f;
  const Tensor cart0 = b.cart.clone();
  const Tensor lat0 = b.lattices[0].clone();
  auto apply_strain = [&](int i, int j, float eps) {
    // x' = x (I + e), L' = L (I + e)
    for (index_t a = 0; a < b.num_atoms; ++a) {
      for (int col = 0; col < 3; ++col) {
        float v = cart0.data()[a * 3 + col];
        if (col == j) v += eps * cart0.data()[a * 3 + i];
        b.cart.data()[a * 3 + col] = v;
      }
    }
    for (int r = 0; r < 3; ++r) {
      for (int col = 0; col < 3; ++col) {
        float v = lat0.data()[r * 3 + col];
        if (col == j) v += eps * lat0.data()[r * 3 + i];
        b.lattices[0].data()[r * 3 + col] = v;
      }
    }
  };
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      apply_strain(i, j, h);
      const double ep = total_energy(
          net.forward(b, ForwardMode::kEval).energy_per_atom.value(),
          b.natoms);
      apply_strain(i, j, -h);
      const double em = total_energy(
          net.forward(b, ForwardMode::kEval).energy_per_atom.value(),
          b.natoms);
      apply_strain(i, j, 0.0f);
      const double fd = (ep - em) / (2.0 * h) / vol;
      EXPECT_NEAR(stress.data()[i * 3 + j], fd, 5e-4)
          << "strain component " << i << j;
    }
  }
}

TEST(Model, EnergyRotationInvariantAndForceHeadEquivariant) {
  // Rotate the crystal; the decoupled force head must rotate its output
  // (Eq. 8) while the energy stays unchanged.
  Dataset ds = tiny_dataset(1, 36);
  Crystal c = ds[0].crystal;
  const double ang = 0.7;
  const data::Mat3 rot = {{{std::cos(ang), -std::sin(ang), 0},
                           {std::sin(ang), std::cos(ang), 0},
                           {0, 0, 1}}};
  Crystal cr = c;
  cr.lattice = data::mat_mul(c.lattice, rot);

  Dataset d1 = Dataset::from_crystals({c});
  Dataset d2 = Dataset::from_crystals({cr});
  Batch b1 = data::collate_indices(d1, {0});
  Batch b2 = data::collate_indices(d2, {0});
  ASSERT_EQ(b1.num_edges, b2.num_edges);  // rotation preserves the graph

  ModelConfig cfg = tiny_config();
  cfg.decoupled_heads = true;
  cfg.batched_basis = true;
  CHGNet net(cfg, 10);
  ModelOutput o1 = net.forward(b1, ForwardMode::kEval);
  ModelOutput o2 = net.forward(b2, ForwardMode::kEval);
  expect_close(o1.energy_per_atom.value(), o2.energy_per_atom.value(), 1e-4f,
               "rotated energy");
  // F2 =? F1 @ R
  const float* f1 = o1.forces.value().data();
  const float* f2 = o2.forces.value().data();
  for (index_t a = 0; a < b1.num_atoms; ++a) {
    for (int j = 0; j < 3; ++j) {
      double expect = 0.0;
      for (int k = 0; k < 3; ++k) {
        expect += static_cast<double>(f1[a * 3 + k]) * rot[k][j];
      }
      EXPECT_NEAR(f2[a * 3 + j], expect, 2e-3) << "atom " << a << " dir " << j;
    }
  }
}

TEST(Model, ParamCountOrderingMatchesTable1) {
  // Table I: "w/o head" has slightly fewer parameters than reference-style
  // output (heads removed), "F/S head" has more (heads added).
  CHGNet ref(ModelConfig::reference(), 11);
  CHGNet no_head(ModelConfig::fast_no_head(), 11);
  CHGNet fs_head(ModelConfig::fast(), 11);
  EXPECT_EQ(ref.num_parameters(), no_head.num_parameters());
  EXPECT_GT(fs_head.num_parameters(), no_head.num_parameters());
  // Full-size config lands in the paper's ballpark (~4e5 params).
  EXPECT_GT(ref.num_parameters(), 150000);
  EXPECT_LT(ref.num_parameters(), 900000);
}

TEST(Model, DependencyEliminationKeepsShapesAndFinite) {
  Dataset ds = tiny_dataset(3, 37);
  Batch b = data::collate_indices(ds, {0, 1, 2});
  ModelConfig cfg = tiny_config();
  cfg.dependency_elimination = true;
  cfg.batched_basis = true;
  CHGNet net(cfg, 12);
  ModelOutput out = net.forward(b);
  for (float x : out.forces.value().to_vector()) {
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(Model, DoubleBackwardThroughForceLoss) {
  // Reference training path: Huber-style loss on derivative forces must
  // propagate to the weights (second-order).  Smoke-check finiteness.
  Dataset ds = tiny_dataset(1, 38);
  Batch b = data::collate_indices(ds, {0});
  ModelConfig cfg = tiny_config();
  cfg.num_layers = 1;
  cfg.batched_basis = true;
  CHGNet net(cfg, 13);
  ModelOutput out = net.forward(b, ForwardMode::kTrain);
  Var loss = sum_all(square(sub(out.forces, constant(b.forces))));
  ag::backward(loss);
  index_t with_grad = 0;
  for (auto& p : net.parameters()) {
    if (p.has_grad()) {
      ++with_grad;
      for (float g : p.grad().to_vector()) ASSERT_TRUE(std::isfinite(g));
    }
  }
  EXPECT_GT(with_grad, 10);
}


TEST(Model, SecondOrderWeightGradientMatchesNumeric) {
  // The decisive correctness test for the reference training path: the
  // analytic gradient of a force loss w.r.t. a *weight* tensor (which flows
  // through d(dE/dx)/dw, a true second-order derivative of the full model)
  // must match central differences.
  Dataset ds = tiny_dataset(1, 40);
  Batch b = data::collate_indices(ds, {0});
  ModelConfig cfg;
  cfg.feat_dim = 8;
  cfg.num_radial = 5;
  cfg.num_angular = 5;
  cfg.num_layers = 1;
  cfg.batched_basis = true;
  CHGNet net(cfg, 16);

  auto force_loss = [&]() -> ag::Var {
    ModelOutput out = net.forward(b, ForwardMode::kTrain);
    return sum_all(square(out.forces));
  };
  // Pick a mid-network weight (the atom-conv projection of block 0).
  ag::Var w;
  for (auto& [name, p] : net.named_parameters()) {
    if (name == "block0.atom_proj.w") w = p;
  }
  ASSERT_TRUE(w.defined());
  ag::GradCheckOptions opt;
  opt.eps = 2e-2f;
  opt.rtol = 8e-2f;
  opt.atol = 5e-3f;
  opt.max_per_leaf = 6;
  auto res = ag::gradcheck(force_loss, {w}, opt);
  EXPECT_TRUE(res.ok) << res.detail << " (abs " << res.max_abs_err
                      << ", rel " << res.max_rel_err << ")";
}

class GraphConfigSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GraphConfigSweep, ModelRunsAndGraphInvariantsHold) {
  const auto [atom_cut, bond_cut] = GetParam();
  data::GraphConfig gc;
  gc.atom_cutoff = atom_cut;
  gc.bond_cutoff = bond_cut;
  data::GeneratorConfig gen;
  gen.min_atoms = 3;
  gen.max_atoms = 6;
  Dataset ds = Dataset::generate(3, 51, gen, gc);
  for (index_t i = 0; i < ds.size(); ++i) {
    const data::GraphData& g = ds[i].graph;
    for (index_t e : g.short_edges) {
      EXPECT_LE(g.edge_dist[static_cast<std::size_t>(e)], bond_cut);
    }
    for (double d : g.edge_dist) EXPECT_LE(d, atom_cut + 1e-9);
  }
  ModelConfig cfg = tiny_config();
  cfg.atom_cutoff = atom_cut;
  cfg.bond_cutoff = bond_cut;
  cfg.batched_basis = true;
  CHGNet net(cfg, 17);
  Batch b = data::collate_indices(ds, {0, 1, 2});
  ModelOutput out = net.forward(b, ForwardMode::kEval);
  for (float v : out.energy_per_atom.value().to_vector()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cutoffs, GraphConfigSweep,
    ::testing::Values(std::make_pair(4.0, 2.0), std::make_pair(5.0, 2.5),
                      std::make_pair(6.0, 3.0), std::make_pair(7.0, 3.5)));


TEST(Model, IntermediateMagmomReadoutKnob) {
  // With magmom_intermediate the head reads the features entering the final
  // block (real-CHGNet style): magmoms change, everything else is bitwise
  // identical.
  Dataset ds = tiny_dataset(2, 41);
  Batch b = data::collate_indices(ds, {0, 1});
  ModelConfig base = tiny_config();
  base.batched_basis = true;
  ModelConfig inter = base;
  inter.magmom_intermediate = true;
  CHGNet a(base, 18), c(inter, 18);
  c.copy_parameters_from(a);
  ModelOutput oa = a.forward(b, ForwardMode::kEval);
  ModelOutput oc = c.forward(b, ForwardMode::kEval);
  EXPECT_EQ(oa.energy_per_atom.value().to_vector(),
            oc.energy_per_atom.value().to_vector());
  EXPECT_EQ(oa.forces.value().to_vector(), oc.forces.value().to_vector());
  EXPECT_NE(oa.magmom.value().to_vector(), oc.magmom.value().to_vector());
  EXPECT_EQ(oc.magmom.shape(), (Shape{b.num_atoms, 1}));
}

TEST(Model, EvalModeUsesNoGraphForDecoupled) {
  Dataset ds = tiny_dataset(1, 39);
  Batch b = data::collate_indices(ds, {0});
  ModelConfig cfg = tiny_config();
  cfg.decoupled_heads = true;
  cfg.batched_basis = true;
  CHGNet net(cfg, 14);
  perf::reset_peak();
  const auto live_before = perf::counters().bytes_live;
  {
    ModelOutput out = net.forward(b, ForwardMode::kEval);
    (void)out;
  }
  // After the outputs die, no graph survives.
  EXPECT_LE(perf::counters().bytes_live, live_before + 1024);
}

TEST(Model, FactoryFunctions) {
  auto fast = make_fastchgnet(15);
  auto ref = make_reference_chgnet(15);
  EXPECT_TRUE(fast->config().decoupled_heads);
  EXPECT_FALSE(ref->config().decoupled_heads);
  EXPECT_EQ(fast->config().tag(), "FastCHGNet[batched+fused+heads]");
  EXPECT_EQ(ref->config().tag(), "CHGNet(reference)");
}

}  // namespace
}  // namespace fastchg::model
