// Tests for the training stack: Huber loss values and gradients, Adam on a
// quadratic, cosine annealing, Eq.-14 LR scaling, metrics, and an
// end-to-end "loss goes down" integration test for both the derivative and
// decoupled readouts.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "train/trainer.hpp"

namespace fastchg::train {
namespace {

using namespace ag::ops;
using ag::Var;

// ---------------------------------------------------------------------------
// huber
// ---------------------------------------------------------------------------

TEST(Huber, QuadraticInsideLinearOutside) {
  Var pred(Tensor::from_vector({0.05f, 1.0f}, {2}), false);
  Var target(Tensor::from_vector({0.0f, 0.0f}, {2}), false);
  const float delta = 0.1f;
  // elem 0: 0.5*0.05^2 = 0.00125; elem 1: 0.1*(1 - 0.05) = 0.095
  EXPECT_NEAR(huber(pred, target, delta).item(), 0.5f * (0.00125f + 0.095f),
              1e-6f);
}

TEST(Huber, ZeroAtExactMatch) {
  Var pred(Tensor::from_vector({1, 2, 3}, {3}), false);
  EXPECT_FLOAT_EQ(huber(pred, pred, 0.1f).item(), 0.0f);
}

TEST(Huber, GradCheck) {
  Rng rng(1);
  Tensor p = Tensor::empty({12});
  rng.fill_uniform(p, -0.5f, 0.5f);
  Var pred(std::move(p), true);
  Tensor t = Tensor::zeros({12});
  Var target(std::move(t), false);
  ag::GradCheckOptions opt;
  opt.eps = 1e-3f;  // keep perturbations inside each Huber branch
  auto r = ag::gradcheck([&] { return huber(pred, target, 0.3f); }, {pred},
                         opt);
  EXPECT_TRUE(r.ok) << r.detail;
}

// ---------------------------------------------------------------------------
// adam
// ---------------------------------------------------------------------------

TEST(AdamOpt, MinimizesQuadratic) {
  Var x(Tensor::from_vector({5.0f, -3.0f}, {2}), true);
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    ag::backward(sum_all(square(x)));
    opt.step();
  }
  for (float v : x.value().to_vector()) EXPECT_NEAR(v, 0.0f, 1e-2f);
}

TEST(AdamOpt, SkipsParamsWithoutGrad) {
  Var x(Tensor::scalar(1.0f), true);
  Var y(Tensor::scalar(2.0f), true);
  Adam opt({x, y}, 0.1f);
  ag::backward(square(x));
  opt.step();  // y has no grad; must not crash or move
  EXPECT_FLOAT_EQ(y.value().item(), 2.0f);
  EXPECT_LT(x.value().item(), 1.0f);
}

// ---------------------------------------------------------------------------
// scheduler
// ---------------------------------------------------------------------------

TEST(Scheduler, CosineEndpoints) {
  CosineAnnealingLR s(1.0f, 100, 0.1f);
  EXPECT_NEAR(s.lr_at(0), 1.0f, 1e-6f);
  EXPECT_NEAR(s.lr_at(100), 0.1f, 1e-6f);
  EXPECT_NEAR(s.lr_at(50), 0.55f, 1e-6f);
  EXPECT_NEAR(s.lr_at(1000), 0.1f, 1e-6f);  // clamped past the end
}

TEST(Scheduler, MonotoneDecreasing) {
  CosineAnnealingLR s(3e-4f, 50);
  for (index_t t = 1; t <= 50; ++t) {
    EXPECT_LE(s.lr_at(t), s.lr_at(t - 1) + 1e-9f);
  }
}

TEST(Scheduler, Eq14LinearScaling) {
  // init_LR = batch/k * 3e-4 with k = 128 (paper Eq. 14).
  EXPECT_NEAR(scaled_init_lr(128), 3e-4f, 1e-9f);
  EXPECT_NEAR(scaled_init_lr(2048), 2048.0f / 128.0f * 3e-4f, 1e-8f);
  EXPECT_NEAR(scaled_init_lr(256, 128, 1e-3f), 2e-3f, 1e-8f);
}

// ---------------------------------------------------------------------------
// metrics
// ---------------------------------------------------------------------------

TEST(Metrics, MAEAndR2KnownValues) {
  RegressionStats st;
  st.add(Tensor::from_vector({1.0f, 2.0f, 3.0f}, {3}),
         Tensor::from_vector({1.5f, 2.0f, 2.5f}, {3}));
  EXPECT_NEAR(st.mae(), (0.5 + 0.0 + 0.5) / 3.0, 1e-9);
  // Perfect prediction: R^2 = 1.
  RegressionStats perfect;
  Tensor t = Tensor::from_vector({1, 2, 3, 4}, {4});
  perfect.add(t, t);
  EXPECT_NEAR(perfect.r2(), 1.0, 1e-9);
}

TEST(Metrics, R2MeanPredictorIsZero) {
  RegressionStats st;
  st.add(Tensor::from_vector({2, 2, 2, 2}, {4}),
         Tensor::from_vector({1, 2, 3, 2}, {4}));
  EXPECT_NEAR(st.r2(), 0.0, 1e-6);
}

TEST(Metrics, PairRetentionForParityPlot) {
  RegressionStats st;
  st.keep_pairs(true);
  st.add(1.0, 2.0);
  st.add(3.0, 3.5);
  ASSERT_EQ(st.pairs().size(), 2u);
  EXPECT_FLOAT_EQ(st.pairs()[0].first, 1.0f);
  EXPECT_FLOAT_EQ(st.pairs()[1].second, 3.5f);
}

// ---------------------------------------------------------------------------
// end-to-end training
// ---------------------------------------------------------------------------

model::ModelConfig tiny_config(bool decoupled) {
  model::ModelConfig cfg;
  cfg.feat_dim = 16;
  cfg.num_radial = 9;
  cfg.num_angular = 9;
  cfg.num_layers = 2;
  cfg.batched_basis = true;
  cfg.fused_kernels = true;
  cfg.factored_envelope = true;
  cfg.packed_linears = true;
  if (decoupled) {
    cfg.dependency_elimination = true;
    cfg.decoupled_heads = true;
  }
  return cfg;
}

data::Dataset small_dataset() {
  data::GeneratorConfig g;
  g.min_atoms = 3;
  g.max_atoms = 8;
  g.lognormal_mu = 1.6;
  return data::Dataset::generate(24, 2024, g);
}

class EndToEnd : public ::testing::TestWithParam<bool> {};

TEST_P(EndToEnd, LossDecreasesOverEpochs) {
  const bool decoupled = GetParam();
  data::Dataset ds = small_dataset();
  model::CHGNet net(tiny_config(decoupled), 3);
  TrainConfig tc;
  tc.batch_size = 8;
  tc.epochs = 6;
  tc.base_lr = 3e-3f;
  Trainer trainer(net, tc);
  std::vector<index_t> idx(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) idx[static_cast<std::size_t>(i)] = i;
  auto history = trainer.fit(ds, idx);
  ASSERT_EQ(history.size(), 6u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss * 0.9)
      << "first " << history.front().mean_loss << " last "
      << history.back().mean_loss;
  for (const auto& h : history) {
    EXPECT_TRUE(std::isfinite(h.mean_loss));
    EXPECT_EQ(h.iterations, 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Readouts, EndToEnd, ::testing::Bool());

TEST(TrainerConfig, ScaledLRApplied) {
  data::Dataset ds = small_dataset();
  model::CHGNet net(tiny_config(true), 4);
  TrainConfig tc;
  tc.batch_size = 256;
  tc.scale_lr = true;
  Trainer trainer(net, tc);
  EXPECT_NEAR(trainer.initial_lr(), 256.0f / 128.0f * 3e-4f, 1e-8f);
}

TEST(TrainerEval, MetricsFinite) {
  data::Dataset ds = small_dataset();
  model::CHGNet net(tiny_config(true), 5);
  TrainConfig tc;
  tc.batch_size = 8;
  Trainer trainer(net, tc);
  std::vector<index_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
  EvalMetrics m = trainer.evaluate(ds, idx);
  EXPECT_TRUE(std::isfinite(m.energy_mae_mev_atom));
  EXPECT_TRUE(std::isfinite(m.force_mae_mev_a));
  EXPECT_TRUE(std::isfinite(m.stress_mae_gpa));
  EXPECT_TRUE(std::isfinite(m.magmom_mae_mmub));
  EXPECT_GT(m.energy_mae_mev_atom, 0.0);
}


// ---------------------------------------------------------------------------
// gradient accumulation + early stopping
// ---------------------------------------------------------------------------

TEST(GradAccum, StepsOptimizerOncePerAccumWindow) {
  data::Dataset ds = small_dataset();
  model::CHGNet net(tiny_config(true), 21);
  TrainConfig tc;
  tc.batch_size = 4;   // 24 samples -> 6 micro-batches
  tc.accumulation_steps = 3;
  tc.epochs = 1;
  Trainer trainer(net, tc);
  std::vector<index_t> idx;
  for (index_t i = 0; i < ds.size(); ++i) idx.push_back(i);
  trainer.fit(ds, idx);
  // 6 micro-batches / 3 = 2 optimizer steps.
  EXPECT_EQ(trainer.optimizer().step_count(), 2);
}

TEST(GradAccum, StillLearns) {
  data::Dataset ds = small_dataset();
  model::CHGNet net(tiny_config(true), 22);
  TrainConfig tc;
  tc.batch_size = 4;
  tc.accumulation_steps = 2;
  tc.epochs = 5;
  tc.base_lr = 3e-3f;
  Trainer trainer(net, tc);
  std::vector<index_t> idx;
  for (index_t i = 0; i < ds.size(); ++i) idx.push_back(i);
  auto hist = trainer.fit(ds, idx);
  EXPECT_LT(hist.back().mean_loss, hist.front().mean_loss);
}

TEST(EarlyStopping, StopsAndRestoresBestWeights) {
  data::Dataset ds = small_dataset();
  model::CHGNet net(tiny_config(true), 23);
  TrainConfig tc;
  tc.batch_size = 8;
  tc.epochs = 12;
  tc.base_lr = 3e-2f;  // deliberately unstable so val score oscillates
  Trainer trainer(net, tc);
  std::vector<index_t> train_idx, val_idx;
  for (index_t i = 0; i < 18; ++i) train_idx.push_back(i);
  for (index_t i = 18; i < ds.size(); ++i) val_idx.push_back(i);
  auto hist = trainer.fit(ds, train_idx, val_idx, /*patience=*/2);
  ASSERT_FALSE(hist.empty());
  for (const auto& h : hist) EXPECT_TRUE(std::isfinite(h.val_score));
  // Restored weights must reproduce the best recorded val score.
  double best = hist[0].val_score;
  for (const auto& h : hist) best = std::min(best, h.val_score);
  EvalMetrics m = trainer.evaluate(ds, val_idx);
  const double restored = tc.weights.energy * m.energy_mae_mev_atom +
                          tc.weights.force * m.force_mae_mev_a +
                          tc.weights.stress * m.stress_mae_gpa +
                          tc.weights.magmom * m.magmom_mae_mmub;
  EXPECT_NEAR(restored, best, 1e-6 * std::max(1.0, best));
}

TEST(EarlyStopping, EmptyValidationThrows) {
  data::Dataset ds = small_dataset();
  model::CHGNet net(tiny_config(true), 24);
  Trainer trainer(net, {});
  EXPECT_THROW(trainer.fit(ds, {0, 1}, {}, 1), Error);
}

TEST(PrefetchTrainer, IdenticalResultsWithAndWithoutPrefetch) {
  // Prefetch only overlaps collation; the batch stream and therefore the
  // training trajectory must be bit-identical.
  data::Dataset ds = small_dataset();
  std::vector<index_t> idx;
  for (index_t i = 0; i < ds.size(); ++i) idx.push_back(i);
  auto run = [&](bool prefetch) {
    model::CHGNet net(tiny_config(true), 31);
    TrainConfig tc;
    tc.batch_size = 8;
    tc.epochs = 2;
    tc.prefetch = prefetch;
    Trainer trainer(net, tc);
    trainer.fit(ds, idx);
    std::vector<float> weights;
    for (auto& p : net.parameters()) {
      auto v = p.value().to_vector();
      weights.insert(weights.end(), v.begin(), v.end());
    }
    return weights;
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// AtomRef composition baseline
// ---------------------------------------------------------------------------

TEST(AtomRef, SolveDenseKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = (1, 3)
  std::vector<double> a{2, 1, 1, 3};
  std::vector<double> b{5, 10};
  auto x = solve_dense(a, b, 2);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(AtomRef, SolveDenseSingularThrows) {
  std::vector<double> a{1, 2, 2, 4};
  std::vector<double> b{1, 2};
  EXPECT_THROW(solve_dense(a, b, 2), Error);
}

TEST(AtomRef, FitCapturesCompositionBaseline) {
  data::Dataset ds = data::Dataset::generate(120, 555);
  std::vector<index_t> rows;
  for (index_t i = 0; i < ds.size(); ++i) rows.push_back(i);
  auto e0 = fit_atom_ref(ds, rows, 89);
  ASSERT_EQ(e0.size(), 90u);
  // The composition model must explain most of the energy variance: its
  // residual MAE should be far below the raw spread of energies per atom.
  double raw_mean = 0.0;
  for (index_t i = 0; i < ds.size(); ++i) {
    raw_mean += ds[i].crystal.energy / ds[i].crystal.natoms();
  }
  raw_mean /= ds.size();
  double raw_mae = 0.0, residual_mae = 0.0;
  for (index_t i = 0; i < ds.size(); ++i) {
    const data::Crystal& c = ds[i].crystal;
    const double target = c.energy / c.natoms();
    double pred = 0.0;
    for (index_t z : c.species) pred += e0[static_cast<std::size_t>(z)];
    pred /= c.natoms();
    raw_mae += std::fabs(target - raw_mean);
    residual_mae += std::fabs(target - pred);
  }
  EXPECT_LT(residual_mae, 0.4 * raw_mae)
      << "residual " << residual_mae / ds.size() << " vs raw spread "
      << raw_mae / ds.size();
}

TEST(AtomRef, ModelEnergyBaselineImproves) {
  data::Dataset ds = data::Dataset::generate(48, 556);
  std::vector<index_t> rows;
  for (index_t i = 0; i < ds.size(); ++i) rows.push_back(i);
  model::CHGNet net(tiny_config(true), 9);
  EvalMetrics before = evaluate_model(net, ds, rows, 16);
  net.set_atom_ref(fit_atom_ref(ds, rows, net.config().num_species));
  EvalMetrics after = evaluate_model(net, ds, rows, 16);
  // Untrained GNN + fitted baseline must beat untrained GNN alone by a lot.
  EXPECT_LT(after.energy_mae_mev_atom, 0.5 * before.energy_mae_mev_atom);
}

TEST(AtomRef, DoesNotChangeForces) {
  data::Dataset ds = data::Dataset::generate(4, 557);
  data::Batch b = data::collate_indices(ds, {0, 1, 2, 3});
  model::CHGNet net(tiny_config(false), 10);
  Tensor f_before =
      net.forward(b, model::ForwardMode::kEval).forces.value().clone();
  std::vector<float> e0(
      static_cast<std::size_t>(net.config().num_species + 1), 1.5f);
  net.set_atom_ref(e0);
  Tensor f_after =
      net.forward(b, model::ForwardMode::kEval).forces.value().clone();
  EXPECT_EQ(f_before.to_vector(), f_after.to_vector());
}

TEST(AtomRef, WrongSizeThrows) {
  model::CHGNet net(tiny_config(true), 11);
  EXPECT_THROW(net.set_atom_ref(std::vector<float>(5, 0.0f)), Error);
}

}  // namespace
}  // namespace fastchg::train
