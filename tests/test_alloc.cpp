// Allocator-layer correctness (core/alloc.hpp, docs/memory.md):
//
//   * bucket rounding, hit/miss accounting, trim and high-water stats;
//   * ArenaScope install/restore semantics (nesting, pooling-off inertness,
//     epoch marks);
//   * tensor storage routing: pool reuse across same-shape tensors,
//     source_allocator() attribution, cross-thread free returning blocks to
//     the issuing pool;
//   * from_vector(&&) buffer adoption (zero copy, no allocator round-trip);
//   * a randomized multi-threaded alloc/free/epoch stress test with data
//     integrity checks, run under the ASan/UBSan CI matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/alloc.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "perf/counters.hpp"

namespace fastchg {
namespace {

// Tests toggle the global pooling switch; restore it so test order never
// leaks allocator mode into unrelated suites (CI runs --schedule-random).
class AllocTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_ = alloc::pooling_enabled(); }
  void TearDown() override { alloc::set_pooling_enabled(prev_); }

 private:
  bool prev_ = true;
};

TEST_F(AllocTest, BucketRoundsToPowerOfTwoWithFloor) {
  EXPECT_EQ(alloc::PoolAllocator::bucket_size(1), 64u);
  EXPECT_EQ(alloc::PoolAllocator::bucket_size(64), 64u);
  EXPECT_EQ(alloc::PoolAllocator::bucket_size(65), 128u);
  EXPECT_EQ(alloc::PoolAllocator::bucket_size(1000), 1024u);
  EXPECT_EQ(alloc::PoolAllocator::bucket_size(1 << 20), 1u << 20);
  EXPECT_EQ(alloc::PoolAllocator::bucket_size((1 << 20) + 1), 1u << 21);
}

TEST_F(AllocTest, FreeListReuseIsAHit) {
  alloc::PoolAllocator pool;
  void* a = pool.allocate(100);   // miss: new 128-byte slab
  pool.deallocate(a, 100);
  void* b = pool.allocate(90);    // hit: same bucket, same block
  EXPECT_EQ(a, b);
  pool.deallocate(b, 90);

  const alloc::PoolStats st = pool.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.live_blocks, 0u);
  EXPECT_EQ(st.free_blocks, 1u);
  EXPECT_EQ(st.slab_bytes, 128u);
  EXPECT_EQ(st.high_water, 128u);
}

TEST_F(AllocTest, TrimReturnsFreeListsUpstreamAndKeepsHighWater) {
  alloc::PoolAllocator pool;
  void* a = pool.allocate(200);  // 256
  void* b = pool.allocate(300);  // 512
  pool.deallocate(a, 200);
  pool.deallocate(b, 300);
  EXPECT_EQ(pool.stats().slab_bytes, 768u);

  pool.trim();
  const alloc::PoolStats st = pool.stats();
  EXPECT_EQ(st.slab_bytes, 0u);
  EXPECT_EQ(st.free_blocks, 0u);
  EXPECT_EQ(st.high_water, 768u);  // high-water survives the trim

  // The pool still works after a trim (fresh miss).
  void* c = pool.allocate(200);
  EXPECT_EQ(pool.stats().misses, 3u);
  pool.deallocate(c, 200);
}

TEST_F(AllocTest, TrimToReleasesLargestBucketsFirstAndCounts) {
  alloc::PoolAllocator pool;
  void* a = pool.allocate(100);   // 128
  void* b = pool.allocate(1000);  // 1024
  void* c = pool.allocate(3000);  // 4096
  pool.deallocate(a, 100);
  pool.deallocate(b, 1000);
  pool.deallocate(c, 3000);
  ASSERT_EQ(pool.stats().slab_bytes, 128u + 1024u + 4096u);

  // Target between 128 and 128+1024: the 4096 and 1024 slabs (largest
  // first) must go; the 128 slab stays.
  const std::uint64_t released = pool.trim_to(1100);
  EXPECT_EQ(released, 4096u + 1024u);
  const alloc::PoolStats st = pool.stats();
  EXPECT_EQ(st.slab_bytes, 128u);
  EXPECT_EQ(st.free_blocks, 1u);
  EXPECT_EQ(st.trimmed_bytes, 4096u + 1024u);

  // Live blocks are never trimmed: with everything live, trim_to is a no-op.
  void* d = pool.allocate(100);
  EXPECT_EQ(pool.trim_to(0), 0u);
  EXPECT_EQ(pool.stats().live_blocks, 1u);
  pool.deallocate(d, 100);
  // Now the free list can be fully drained.
  EXPECT_EQ(pool.trim_to(0), 128u);
  EXPECT_EQ(pool.stats().slab_bytes, 0u);
}

TEST_F(AllocTest, TrimWatermarkTracksLiveDemandWindow) {
  alloc::PoolAllocator pool;
  // Burst: 4096 + 1024 live at once, then everything freed.
  void* big = pool.allocate(3000);   // 4096
  void* mid = pool.allocate(1000);   // 1024
  pool.deallocate(mid, 1000);
  pool.deallocate(big, 3000);
  EXPECT_EQ(pool.stats().window_high_water, 4096u + 1024u);
  EXPECT_EQ(pool.stats().slab_bytes, 4096u + 1024u);

  // First watermark trim: demand window covers the burst, nothing to trim.
  EXPECT_EQ(pool.trim_watermark(/*slack_bytes=*/0), 0u);
  // The window rebased to current live bytes (0).  Steady small traffic:
  void* small = pool.allocate(100);  // 128-byte slab, a fresh miss
  pool.deallocate(small, 100);
  EXPECT_EQ(pool.stats().window_high_water, 128u);

  // Second watermark trim: recent demand is 128 bytes, so the burst slabs
  // (5120 bytes) exceed 128 + slack and are returned upstream.
  const std::uint64_t released = pool.trim_watermark(/*slack_bytes=*/128);
  EXPECT_GE(released, 4096u + 1024u);
  EXPECT_LE(pool.stats().slab_bytes, 256u);
  EXPECT_GE(pool.stats().trimmed_bytes, released);
}

TEST_F(AllocTest, PoolTrimmedBytesCounterTracksTrims) {
  perf::counters().reset();
  alloc::PoolAllocator pool;
  void* a = pool.allocate(1000);
  pool.deallocate(a, 1000);
  EXPECT_EQ(perf::counters().snapshot().pool_trimmed_bytes, 0u);
  pool.trim();
  EXPECT_GE(perf::counters().snapshot().pool_trimmed_bytes, 1024u);
}

TEST_F(AllocTest, ArenaScopeInstallsAndRestores) {
  alloc::set_pooling_enabled(true);
  const alloc::AllocatorPtr outer_default = alloc::current_allocator();
  auto pool_a = std::make_shared<alloc::PoolAllocator>();
  auto pool_b = std::make_shared<alloc::PoolAllocator>();
  {
    alloc::ArenaScope sa(pool_a);
    EXPECT_EQ(alloc::current_allocator().get(), pool_a.get());
    {
      alloc::ArenaScope sb(pool_b);
      EXPECT_EQ(alloc::current_allocator().get(), pool_b.get());
    }
    EXPECT_EQ(alloc::current_allocator().get(), pool_a.get());
  }
  EXPECT_EQ(alloc::current_allocator().get(), outer_default.get());
}

TEST_F(AllocTest, ArenaScopeMarksEpochOnExit) {
  alloc::set_pooling_enabled(true);
  auto pool = std::make_shared<alloc::PoolAllocator>();
  EXPECT_EQ(pool->stats().epochs, 0u);
  { alloc::ArenaScope s(pool); }
  { alloc::ArenaScope s(pool); }
  EXPECT_EQ(pool->stats().epochs, 2u);
}

TEST_F(AllocTest, PoolingDisabledFallsBackToSystemAndScopesAreInert) {
  alloc::set_pooling_enabled(false);
  EXPECT_EQ(alloc::current_allocator().get(), alloc::system_allocator().get());

  auto pool = std::make_shared<alloc::PoolAllocator>();
  {
    alloc::ArenaScope s(pool);
    EXPECT_EQ(alloc::current_allocator().get(),
              alloc::system_allocator().get());
    Tensor t = Tensor::empty({8});
    EXPECT_EQ(t.source_allocator(), alloc::system_allocator().get());
  }
  EXPECT_EQ(pool->stats().misses, 0u);
}

TEST_F(AllocTest, TensorStorageRecyclesThroughScopePool) {
  alloc::set_pooling_enabled(true);
  auto pool = std::make_shared<alloc::PoolAllocator>();
  alloc::ArenaScope s(pool);

  const float* first_data = nullptr;
  {
    Tensor t = Tensor::empty({256});
    EXPECT_EQ(t.source_allocator(), pool.get());
    first_data = t.data();
  }
  const std::uint64_t hits_before = pool->stats().hits;
  Tensor u = Tensor::empty({256});
  EXPECT_EQ(u.data(), first_data);  // same block re-served
  EXPECT_GT(pool->stats().hits, hits_before);
}

TEST_F(AllocTest, BlocksFreedOutsideScopeReturnToTheirPool) {
  alloc::set_pooling_enabled(true);
  auto pool = std::make_shared<alloc::PoolAllocator>();
  Tensor t;
  {
    alloc::ArenaScope s(pool);
    t = Tensor::empty({64});
  }
  // Freed after the scope ended -- the block still goes back to `pool`
  // (Storage holds the issuing AllocatorPtr), not to the current default.
  const std::uint64_t live_before = pool->stats().live_blocks;
  t = Tensor();
  EXPECT_LT(pool->stats().live_blocks, live_before);
  EXPECT_GT(pool->stats().free_blocks, 0u);
}

TEST_F(AllocTest, CrossThreadFreeReturnsToIssuingPool) {
  alloc::set_pooling_enabled(true);
  auto pool = std::make_shared<alloc::PoolAllocator>();
  Tensor t;
  {
    alloc::ArenaScope s(pool);
    t = Tensor::full({128}, 3.0f);
  }
  std::thread reaper([&t] { t = Tensor(); });
  reaper.join();
  const alloc::PoolStats st = pool->stats();
  EXPECT_EQ(st.live_blocks, 0u);
  EXPECT_GT(st.free_blocks, 0u);
}

TEST_F(AllocTest, PoolOutlivesItsHandleWhileBlocksLive) {
  alloc::set_pooling_enabled(true);
  Tensor t;
  {
    auto pool = std::make_shared<alloc::PoolAllocator>();
    alloc::ArenaScope s(pool);
    t = Tensor::full({512}, 7.0f);
  }
  // The only named handle is gone; the tensor's storage keeps the pool
  // alive, so reading and releasing is safe (ASan would flag a UAF here).
  EXPECT_EQ(t.data()[0], 7.0f);
  t = Tensor();
}

TEST_F(AllocTest, FromVectorMoveAdoptsBufferZeroCopy) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  const float* buf = v.data();
  Tensor t = Tensor::from_vector(std::move(v), {2, 3});
  EXPECT_EQ(t.data(), buf);                  // same buffer, no copy
  EXPECT_EQ(t.source_allocator(), nullptr);  // adopted, not allocator-backed
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.data()[5], 6.0f);
}

TEST_F(AllocTest, FromVectorMoveTracksLogicalBytes) {
  const std::uint64_t before = perf::counters().snapshot().bytes_live;
  {
    std::vector<float> v(1024, 1.0f);
    Tensor t = Tensor::from_vector(std::move(v), {1024});
    EXPECT_EQ(perf::counters().snapshot().bytes_live,
              before + tensor_bytes(1024));
  }
  EXPECT_EQ(perf::counters().snapshot().bytes_live, before);
}

TEST_F(AllocTest, FromVectorMoveRejectsShapeMismatch) {
  std::vector<float> v(5, 0.0f);
  EXPECT_THROW(Tensor::from_vector(std::move(v), {2, 3}), Error);
}

TEST_F(AllocTest, CountersSeePoolTraffic) {
  alloc::set_pooling_enabled(true);
  perf::counters().reset();
  auto pool = std::make_shared<alloc::PoolAllocator>();
  void* a = pool->allocate(100);
  pool->deallocate(a, 100);
  void* b = pool->allocate(100);
  pool->deallocate(b, 100);

  const perf::Counters c = perf::counters().snapshot();
  EXPECT_GE(c.pool_misses, 1u);
  EXPECT_GE(c.pool_hits, 1u);
  EXPECT_GE(c.system_allocs, 1u);  // the miss went upstream
  EXPECT_GE(c.pool_slab_bytes, 128u);
  EXPECT_GE(c.pool_high_water, c.pool_slab_bytes);
}

TEST_F(AllocTest, CountersResetClearsFlowAndRebasesHighWater) {
  auto pool = std::make_shared<alloc::PoolAllocator>();
  void* a = pool->allocate(100);
  pool->deallocate(a, 100);
  void* b = pool->allocate(100);  // one hit on the books
  pool->deallocate(b, 100);

  perf::counters().reset();
  const perf::Counters c = perf::counters().snapshot();
  EXPECT_EQ(c.pool_hits, 0u);
  EXPECT_EQ(c.pool_misses, 0u);
  EXPECT_EQ(c.system_allocs, 0u);
  // Slabs survive the reset; the high-water mark rebases onto them.
  EXPECT_EQ(c.pool_high_water, c.pool_slab_bytes);
}

// Randomized multi-threaded stress: several threads hammer one shared pool
// plus their own scopes with interleaved alloc/free/epoch/trim, each block
// filled with a thread-unique pattern that is verified before release.
// Recycled-block aliasing, double frees, or size-class mixups show up as
// pattern corruption (and as ASan/UBSan reports in the sanitizer matrix).
TEST_F(AllocTest, MultiThreadedRandomizedStress) {
  alloc::set_pooling_enabled(true);
  auto shared_pool = std::make_shared<alloc::PoolAllocator>();
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &shared_pool, &failures] {
      Rng rng(1234u + static_cast<std::uint64_t>(t));
      struct Block {
        void* p;
        std::size_t bytes;
        unsigned char tag;
      };
      std::vector<Block> held;
      const auto check_and_free = [&](std::size_t i) {
        Block blk = held[i];
        held[i] = held.back();
        held.pop_back();
        const auto* bytes = static_cast<unsigned char*>(blk.p);
        for (std::size_t k = 0; k < blk.bytes; ++k) {
          if (bytes[k] != blk.tag) {
            failures[static_cast<std::size_t>(t)] =
                "pattern corruption in recycled block";
            break;
          }
        }
        shared_pool->deallocate(blk.p, blk.bytes);
      };
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int choice = static_cast<int>(rng.randint(0, 100));
        if (choice < 55 || held.empty()) {
          const auto bytes =
              static_cast<std::size_t>(rng.randint(1, 4096));
          void* p = shared_pool->allocate(bytes);
          const auto tag = static_cast<unsigned char>(
              (t + op) % 251);
          std::memset(p, tag, bytes);
          held.push_back({p, bytes, tag});
        } else if (choice < 90) {
          check_and_free(static_cast<std::size_t>(
              rng.randint(0, static_cast<index_t>(held.size()) - 1)));
        } else if (choice < 97) {
          shared_pool->end_epoch();
        } else {
          // Periodic trim races against concurrent alloc/free.
          shared_pool->trim();
        }
      }
      while (!held.empty()) check_and_free(held.size() - 1);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& f : failures) EXPECT_EQ(f, "");

  const alloc::PoolStats st = shared_pool->stats();
  EXPECT_EQ(st.live_blocks, 0u);
  EXPECT_EQ(st.live_bytes, 0u);
  EXPECT_GT(st.hits + st.misses, 0u);
}

}  // namespace
}  // namespace fastchg
