// Recorded-step replay (core/replay.hpp + core/memplan.hpp) coverage:
//
//   * memory planner: hand-built nested/disjoint lifetime patterns hit the
//     max-live lower bound exactly, and seeded random lifetime sets always
//     pass the brute-force plan_valid() checker;
//   * capture: two recordings of the same step produce identical
//     fingerprints, and a captured program's plan is valid and tracked in
//     the replay_plan_bytes gauge;
//   * replay: bit-exact (max |diff| == 0.0) against eager for a raw op
//     sequence, the single-device trainer (weights + Adam state via
//     checkpoint byte identity), every data-parallel replica, and the fused
//     serve forward -- each over >= 10 consecutive steps;
//   * cache protocol: eager -> capture -> replay warm-up, LRU eviction,
//     invalidate-and-recapture, bind rejection on shape mismatch or a
//     replaced stable pointer, and full inertness when replay is disabled;
//   * fuzz: seeded shape churn and poisoned batches through the serving
//     engine with replay on -- no crash, no silent NaN, typed errors only,
//     and replay lookups reconcile with micro-batches + bisections;
//   * counters: replay counter updates racing Counters::reset() stay
//     consistent (no tearing, gauge never wraps).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.hpp"
#include "core/memplan.hpp"
#include "core/replay.hpp"
#include "data/batch.hpp"
#include "data/dataset.hpp"
#include "parallel/data_parallel.hpp"
#include "perf/counters.hpp"
#include "serve/engine.hpp"
#include "train/trainer.hpp"

namespace fastchg {
namespace {

using replay::BufferLife;
using replay::MemPlan;
using replay::Program;
using replay::ProgramCache;
using replay::Recorder;
using replay::RecorderScope;

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_ = replay::replay_enabled(); }
  void TearDown() override { replay::set_replay_enabled(prev_); }

 private:
  bool prev_ = true;
};

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.feat_dim = 12;
  cfg.num_radial = 7;
  cfg.num_angular = 7;
  cfg.num_layers = 2;
  return cfg;
}

/// `n` copies of one generated crystal: every batch of equal size collates
/// identically, so a single replay key covers the whole run and the cache
/// walks its full eager -> capture -> replay protocol.
data::Dataset identical_rows(index_t n, std::uint64_t seed) {
  data::GeneratorConfig g;
  g.min_atoms = 4;
  g.max_atoms = 6;
  data::Dataset one = data::Dataset::generate(1, seed, g);
  std::vector<data::Crystal> crystals(static_cast<std::size_t>(n),
                                      one[0].crystal);
  return data::Dataset::from_crystals(std::move(crystals));
}

std::vector<index_t> all_rows(const data::Dataset& ds) {
  std::vector<index_t> idx(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  return idx;
}

std::vector<float> flatten_parameters(const model::CHGNet& net) {
  std::vector<float> flat;
  for (const ag::Var& p : net.parameters()) {
    const std::vector<float> v = p.value().to_vector();
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return flat;
}

float max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Memory planner
// ---------------------------------------------------------------------------

TEST_F(ReplayTest, PlanDisjointLifetimesShareBytes) {
  // Three buffers alive one after another: all share offset 0 and the slab
  // is just the largest aligned size -- which is also the max-live bound.
  std::vector<BufferLife> lives = {
      {256, 0, 1, 0}, {512, 2, 3, 0}, {128, 4, 5, 0}};
  const MemPlan plan = replay::plan_memory(lives);
  EXPECT_TRUE(replay::plan_valid(plan));
  EXPECT_EQ(plan.slab_bytes, replay::aligned_bytes(512));
  EXPECT_EQ(plan.slab_bytes, plan.lower_bound_bytes);
  for (const BufferLife& b : plan.buffers) EXPECT_EQ(b.offset, 0u);
}

TEST_F(ReplayTest, PlanNestedLifetimesHitLowerBound) {
  // Nested pattern an autograd step produces: a long-lived activation, a
  // shorter-lived one inside it, and transient scratch inside that.
  std::vector<BufferLife> lives = {
      {1024, 0, 9, 0},  // outer
      {256, 1, 6, 0},   // middle
      {64, 2, 3, 0},    // inner scratch
      {64, 4, 5, 0},    // second scratch, reuses the first's bytes
  };
  const MemPlan plan = replay::plan_memory(lives);
  EXPECT_TRUE(replay::plan_valid(plan));
  EXPECT_EQ(plan.slab_bytes, plan.lower_bound_bytes);
  EXPECT_EQ(plan.buffers[2].offset, plan.buffers[3].offset)
      << "disjoint scratch buffers should share bytes";
}

TEST_F(ReplayTest, PlanRandomLifetimesAlwaysValid) {
  std::mt19937_64 rng(20250808u);
  for (int iter = 0; iter < 50; ++iter) {
    const int n = 1 + static_cast<int>(rng() % 40);
    std::vector<BufferLife> lives;
    lives.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      BufferLife b;
      b.bytes = 4 * (1 + rng() % 300);
      b.def = static_cast<int>(rng() % 100);
      b.last = b.def + static_cast<int>(rng() % 30);
      lives.push_back(b);
    }
    const MemPlan plan = replay::plan_memory(lives);
    EXPECT_TRUE(replay::plan_valid(plan)) << "iter " << iter;
    EXPECT_GE(plan.slab_bytes, plan.lower_bound_bytes) << "iter " << iter;
  }
}

// ---------------------------------------------------------------------------
// Recorder / Program on a raw op sequence
// ---------------------------------------------------------------------------

/// A small step over two bound inputs: matmul, residual add, elementwise
/// mul.  Returns the output value tensor.
Tensor tiny_step(const Tensor& x, const Tensor& y) {
  ag::Var vx = ag::ops::constant(x);
  ag::Var vy = ag::ops::constant(y);
  ag::Var z = ag::ops::add(ag::ops::matmul(vx, vy), vx);
  return ag::ops::mul(z, vy).value();
}

Tensor random_square(std::mt19937_64& rng, index_t n) {
  std::vector<float> v(static_cast<std::size_t>(n * n));
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (float& f : v) f = dist(rng);
  return Tensor::from_vector(std::move(v), {n, n});
}

std::shared_ptr<Program> capture_tiny(const Tensor& x, const Tensor& y) {
  Recorder rec;
  rec.bind_input(x);
  rec.bind_input(y);
  Tensor out;
  {
    RecorderScope scope(rec);
    out = tiny_step(x, y);
  }
  rec.tap(out);
  return rec.finish();
}

TEST_F(ReplayTest, CaptureFingerprintIsDeterministic) {
  std::mt19937_64 rng(7u);
  const Tensor x = random_square(rng, 4), y = random_square(rng, 4);
  const auto p1 = capture_tiny(x, y);
  const auto p2 = capture_tiny(x, y);
  EXPECT_EQ(p1->fingerprint(), p2->fingerprint());
  EXPECT_EQ(p1->num_steps(), p2->num_steps());
  EXPECT_GT(p1->num_steps(), 0u);
}

TEST_F(ReplayTest, ReplayMatchesEagerBitExactOnFreshInputs) {
  std::mt19937_64 rng(11u);
  const auto program = capture_tiny(random_square(rng, 4),
                                    random_square(rng, 4));
  for (int step = 0; step < 10; ++step) {
    const Tensor x = random_square(rng, 4), y = random_square(rng, 4);
    ASSERT_TRUE(program->bind({x, y}, {}));
    program->run();
    const Tensor got = program->tap_value(0);
    const Tensor want = tiny_step(x, y);
    ASSERT_EQ(got.numel(), want.numel());
    for (index_t i = 0; i < want.numel(); ++i) {
      ASSERT_EQ(got.data()[i], want.data()[i]) << "step " << step;
    }
  }
}

TEST_F(ReplayTest, CapturedPlanIsValidAndGaugeTracksSlab) {
  std::mt19937_64 rng(13u);
  const std::uint64_t before =
      perf::counters().snapshot().replay_plan_bytes;
  {
    const auto program = capture_tiny(random_square(rng, 4),
                                      random_square(rng, 4));
    EXPECT_TRUE(replay::plan_valid(program->plan()));
    EXPECT_GT(program->plan_bytes(), 0u);
    EXPECT_GE(perf::counters().snapshot().replay_plan_bytes,
              before + program->plan_bytes());
  }
  // Program destroyed: its slab leaves the gauge again.
  EXPECT_EQ(perf::counters().snapshot().replay_plan_bytes, before);
}

TEST_F(ReplayTest, BindRejectsShapeMismatchAndArity) {
  std::mt19937_64 rng(17u);
  const auto program = capture_tiny(random_square(rng, 4),
                                    random_square(rng, 4));
  EXPECT_FALSE(program->bind({random_square(rng, 4)}, {}));  // arity
  EXPECT_FALSE(
      program->bind({random_square(rng, 4), random_square(rng, 5)}, {}));
  EXPECT_TRUE(
      program->bind({random_square(rng, 4), random_square(rng, 4)}, {}));
}

TEST_F(ReplayTest, BindRejectsReplacedStablePointer) {
  std::mt19937_64 rng(19u);
  const Tensor x = random_square(rng, 3), y = random_square(rng, 3);
  Recorder rec;
  rec.bind_input(x);
  rec.expect_stable(y);  // y is a baked operand that must not move
  Tensor out;
  {
    RecorderScope scope(rec);
    out = tiny_step(x, y);
  }
  rec.tap(out);
  const auto program = rec.finish();
  EXPECT_TRUE(program->bind({random_square(rng, 3)}, {y}));
  EXPECT_FALSE(program->bind({random_square(rng, 3)}, {y.clone()}))
      << "a replaced stable storage must fail bind";
  EXPECT_FALSE(program->bind({random_square(rng, 3)}, {}))
      << "stable arity mismatch must fail bind";
}

// ---------------------------------------------------------------------------
// ProgramCache protocol
// ---------------------------------------------------------------------------

TEST_F(ReplayTest, CacheWalksEagerCaptureReplay) {
  replay::set_replay_enabled(true);
  std::mt19937_64 rng(23u);
  ProgramCache cache(4);
  const std::uint64_t key = 0x1234;

  auto l1 = cache.acquire(key);
  EXPECT_EQ(l1.action, ProgramCache::Action::kEager);
  auto l2 = cache.acquire(key);
  EXPECT_EQ(l2.action, ProgramCache::Action::kCapture);
  // A concurrent sighting while the capture is in flight stays eager.
  auto l3 = cache.acquire(key);
  EXPECT_EQ(l3.action, ProgramCache::Action::kEager);
  cache.store(key, capture_tiny(random_square(rng, 3),
                                random_square(rng, 3)));
  auto l4 = cache.acquire(key);
  EXPECT_EQ(l4.action, ProgramCache::Action::kReplay);
  ASSERT_TRUE(l4.program != nullptr);
  EXPECT_TRUE(l4.lock.owns_lock());
  // The lease serializes the slab: a second replay of the same program
  // while the lease is held falls back to eager.
  auto l5 = cache.acquire(key);
  EXPECT_EQ(l5.action, ProgramCache::Action::kEager);

  const ProgramCache::Stats s = cache.stats();
  EXPECT_EQ(s.lookups, 5u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.captures, 1u);
  EXPECT_GE(s.fallbacks, 1u);  // the contended lease
}

TEST_F(ReplayTest, CacheEvictsLeastRecentlyUsedProgram) {
  replay::set_replay_enabled(true);
  std::mt19937_64 rng(29u);
  ProgramCache cache(2);
  for (std::uint64_t key = 1; key <= 3; ++key) {
    (void)cache.acquire(key);
    auto l = cache.acquire(key);
    ASSERT_EQ(l.action, ProgramCache::Action::kCapture) << key;
    cache.store(key, capture_tiny(random_square(rng, 3),
                                  random_square(rng, 3)));
  }
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GE(cache.stats().evictions, 1u);
  // Key 1 was the least recently used: it must have been evicted.
  auto l = cache.acquire(1);
  EXPECT_NE(l.action, ProgramCache::Action::kReplay);
}

TEST_F(ReplayTest, CacheInvalidateForcesRecapture) {
  replay::set_replay_enabled(true);
  std::mt19937_64 rng(31u);
  ProgramCache cache(4);
  const std::uint64_t key = 7;
  (void)cache.acquire(key);
  (void)cache.acquire(key);
  cache.store(key, capture_tiny(random_square(rng, 3),
                                random_square(rng, 3)));
  ASSERT_EQ(cache.acquire(key).action, ProgramCache::Action::kReplay);

  cache.invalidate(key);
  EXPECT_EQ(cache.size(), 0u);
  // The failed-bind sighting counts as the fresh eager pass, so the very
  // next sighting re-captures.
  EXPECT_EQ(cache.acquire(key).action, ProgramCache::Action::kCapture);
}

TEST_F(ReplayTest, DisabledReplayIsCompletelyInert) {
  replay::set_replay_enabled(false);
  ProgramCache cache(4);
  for (int i = 0; i < 5; ++i) {
    auto l = cache.acquire(42);
    EXPECT_EQ(l.action, ProgramCache::Action::kEager);
    EXPECT_TRUE(l.program == nullptr);
  }
  const ProgramCache::Stats s = cache.stats();
  EXPECT_EQ(s.lookups, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.captures, 0u);
}

// ---------------------------------------------------------------------------
// Trainer integration: bit-exactness over >= 10 consecutive steps
// ---------------------------------------------------------------------------

struct TrainRun {
  std::vector<float> params;
  std::vector<train::EpochStats> history;
  ProgramCache::Stats replay_stats;
  std::string checkpoint;
};

TrainRun train_with_replay(bool replay_on, const std::string& ckpt_path) {
  replay::set_replay_enabled(replay_on);
  data::Dataset ds = identical_rows(12, 51);
  model::CHGNet net(tiny_config(), 9);
  train::TrainConfig tc;
  tc.batch_size = 4;
  tc.epochs = 4;  // 3 steps/epoch x 4 epochs = 12 consecutive steps
  train::Trainer trainer(net, tc);
  TrainRun run;
  run.history = trainer.fit(ds, all_rows(ds));
  run.params = flatten_parameters(net);
  run.replay_stats = trainer.replay_cache().stats();
  trainer.save_checkpoint(ckpt_path);
  run.checkpoint = ckpt_path;
  return run;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

TEST_F(ReplayTest, TrainStepBitExactReplayOnVsOff) {
  const TrainRun on =
      train_with_replay(true, ::testing::TempDir() + "replay_on.ckpt");
  const TrainRun off =
      train_with_replay(false, ::testing::TempDir() + "replay_off.ckpt");

  // Replay must actually have engaged: the same topology recurs 12 times,
  // so after 1 eager + 1 capture sighting the rest replays.
  EXPECT_GE(on.replay_stats.hits, 9u);
  EXPECT_EQ(on.replay_stats.captures, 1u);
  EXPECT_EQ(off.replay_stats.lookups, 0u) << "disabled replay must be inert";

  EXPECT_EQ(max_abs_diff(on.params, off.params), 0.0f);
  ASSERT_EQ(on.history.size(), off.history.size());
  for (std::size_t e = 0; e < on.history.size(); ++e) {
    EXPECT_EQ(on.history[e].mean_loss, off.history[e].mean_loss) << e;
    EXPECT_EQ(on.history[e].energy_loss, off.history[e].energy_loss) << e;
    EXPECT_EQ(on.history[e].force_loss, off.history[e].force_loss) << e;
    EXPECT_EQ(on.history[e].stress_loss, off.history[e].stress_loss) << e;
    EXPECT_EQ(on.history[e].magmom_loss, off.history[e].magmom_loss) << e;
  }
  // Checkpoint bytes cover weights + Adam moments + RNG stream: byte
  // identity means the optimizer state matched too.
  EXPECT_EQ(read_file(on.checkpoint), read_file(off.checkpoint));
}

TEST_F(ReplayTest, TrainShapeChurnStaysBitExactWithoutFallbacks) {
  // A mix of two topologies shuffled into every batch: nearly every step
  // carries a different batch composition, so the cache sees heavy key
  // churn.  The invariant under churn is safety, not speed: a shape change
  // must land as a key miss (never a wrong-program bind/fallback) and the
  // trained weights must stay bit-identical to the replay-off run.
  const auto churn_run = [](bool replay_on) {
    replay::set_replay_enabled(replay_on);
    data::Dataset a = identical_rows(8, 61);
    data::GeneratorConfig g;
    g.min_atoms = 7;
    g.max_atoms = 9;
    data::Dataset big = data::Dataset::generate(1, 62, g);
    std::vector<data::Crystal> crystals;
    for (index_t i = 0; i < 8; ++i) crystals.push_back(a[i].crystal);
    for (int i = 0; i < 8; ++i) crystals.push_back(big[0].crystal);
    data::Dataset ds = data::Dataset::from_crystals(std::move(crystals));

    model::CHGNet net(tiny_config(), 10);
    train::TrainConfig tc;
    tc.batch_size = 4;
    tc.epochs = 3;
    tc.shuffle_seed = 5;
    train::Trainer trainer(net, tc);
    const auto history = trainer.fit(ds, all_rows(ds));
    for (const auto& st : history) {
      EXPECT_TRUE(std::isfinite(st.mean_loss));
      EXPECT_EQ(st.skipped_steps, 0);
    }
    if (replay_on) {
      const ProgramCache::Stats s = trainer.replay_cache().stats();
      EXPECT_GT(s.lookups, 0u);
      EXPECT_EQ(s.fallbacks, 0u)
          << "shape churn must miss, not fail a bind";
    }
    return flatten_parameters(net);
  };
  const std::vector<float> on = churn_run(true);
  const std::vector<float> off = churn_run(false);
  EXPECT_EQ(max_abs_diff(on, off), 0.0f);
}

// ---------------------------------------------------------------------------
// Data-parallel integration
// ---------------------------------------------------------------------------

std::vector<float> dp_train(bool replay_on, ProgramCache::Stats* stats0,
                            float* divergence) {
  replay::set_replay_enabled(replay_on);
  data::Dataset ds = identical_rows(16, 71);
  parallel::DataParallelConfig cfg;
  cfg.num_devices = 2;
  cfg.global_batch = 4;  // 4 iterations/epoch, 2 structures per device
  parallel::DataParallelTrainer dp(tiny_config(), cfg, 17);
  for (index_t e = 0; e < 3; ++e) dp.train_epoch(ds, all_rows(ds), e);
  if (stats0 != nullptr) *stats0 = dp.replay_cache(0).stats();
  if (divergence != nullptr) *divergence = dp.replica_divergence();
  return flatten_parameters(dp.master());
}

TEST_F(ReplayTest, DataParallelBitExactReplayOnVsOff) {
  ProgramCache::Stats on_stats{}, off_stats{};
  float on_div = -1.0f, off_div = -1.0f;
  const std::vector<float> on = dp_train(true, &on_stats, &on_div);
  const std::vector<float> off = dp_train(false, &off_stats, &off_div);

  EXPECT_GE(on_stats.hits, 8u)
      << "12 device steps: 1 cold (grads not yet warm), 1 eager sighting, "
         "1 capture, then replays on device 0";
  EXPECT_EQ(off_stats.lookups, 0u);
  EXPECT_EQ(max_abs_diff(on, off), 0.0f);
  // The DDP bit-identity invariant must survive replayed device steps.
  EXPECT_EQ(on_div, 0.0f);
  EXPECT_EQ(off_div, 0.0f);
}

// ---------------------------------------------------------------------------
// Serve integration
// ---------------------------------------------------------------------------

TEST_F(ReplayTest, ServeFusedForwardBitExactAcrossReplaysAndVsPredict) {
  replay::set_replay_enabled(true);
  data::Dataset ds = identical_rows(4, 81);
  model::CHGNet net(tiny_config(), 12);
  serve::EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.cache_capacity = 0;  // the result cache would short-circuit replay
  serve::InferenceEngine engine(net, cfg);

  // Reference reply from the synchronous eager path.
  const auto ref = engine.predict(ds[0].crystal);
  ASSERT_TRUE(ref.ok());

  std::vector<std::vector<serve::Result<serve::Prediction>>> ticks;
  for (int tick = 0; tick < 12; ++tick) {
    for (index_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(engine.submit(ds[i].crystal).ok());
    }
    ticks.push_back(engine.drain());
  }
  const ProgramCache::Stats s = engine.replay_cache().stats();
  EXPECT_GE(s.hits, 10u);
  EXPECT_EQ(s.fallbacks, 0u);

  for (const auto& replies : ticks) {
    ASSERT_EQ(replies.size(), 4u);
    for (const auto& r : replies) {
      ASSERT_TRUE(r.ok());
      const serve::Prediction& p = r.value();
      const serve::Prediction& q = ref.value();
      EXPECT_EQ(p.energy, q.energy);
      ASSERT_EQ(p.forces.size(), q.forces.size());
      for (std::size_t i = 0; i < p.forces.size(); ++i) {
        for (int d = 0; d < 3; ++d) {
          EXPECT_EQ(p.forces[i][d], q.forces[i][d]);
        }
      }
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) EXPECT_EQ(p.stress[i][j], q.stress[i][j]);
      }
      ASSERT_EQ(p.magmom.size(), q.magmom.size());
      for (std::size_t i = 0; i < p.magmom.size(); ++i) {
        EXPECT_EQ(p.magmom[i], q.magmom[i]);
      }
    }
  }
}

TEST_F(ReplayTest, ServeReplayOffMatchesOnExactly) {
  data::Dataset ds = identical_rows(3, 83);
  model::CHGNet net(tiny_config(), 13);
  const auto run_engine = [&](bool replay_on) {
    replay::set_replay_enabled(replay_on);
    serve::EngineConfig cfg;
    cfg.max_batch = 4;
    cfg.cache_capacity = 0;
    serve::InferenceEngine engine(net, cfg);
    std::vector<double> energies;
    for (int tick = 0; tick < 6; ++tick) {
      for (index_t i = 0; i < ds.size(); ++i) {
        EXPECT_TRUE(engine.submit(ds[i].crystal).ok());
      }
      for (const auto& r : engine.drain()) {
        EXPECT_TRUE(r.ok());
        energies.push_back(r.value().energy);
      }
    }
    return energies;
  };
  const std::vector<double> on = run_engine(true);
  const std::vector<double> off = run_engine(false);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) EXPECT_EQ(on[i], off[i]) << i;
}

// ---------------------------------------------------------------------------
// Fuzz: shape churn and poisoned batches through the engine with replay on
// ---------------------------------------------------------------------------

TEST_F(ReplayTest, FuzzShapeChurnNoCrashNoSilentNaN) {
  replay::set_replay_enabled(true);
  data::GeneratorConfig g;
  g.min_atoms = 3;
  g.max_atoms = 10;
  data::Dataset pool = data::Dataset::generate(6, 91, g);
  model::CHGNet net(tiny_config(), 14);
  serve::EngineConfig cfg;
  cfg.max_batch = 3;
  cfg.cache_capacity = 0;
  serve::InferenceEngine engine(net, cfg);

  std::mt19937_64 rng(92u);
  std::uint64_t submitted = 0;
  for (int tick = 0; tick < 25; ++tick) {
    const std::size_t n = 1 + rng() % 6;
    for (std::size_t i = 0; i < n; ++i) {
      const auto pick = static_cast<index_t>(rng() % 6);
      ASSERT_TRUE(engine.submit(pool[pick].crystal).ok());
      ++submitted;
    }
    for (const auto& r : engine.drain()) {
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(std::isfinite(r.value().energy));
      for (const auto& f : r.value().forces) {
        for (int d = 0; d < 3; ++d) EXPECT_TRUE(std::isfinite(f[d]));
      }
    }
  }
  EXPECT_EQ(engine.stats().served, submitted);
  EXPECT_EQ(engine.stats().numeric_faults, 0u);
  // Every fused forward consulted the program cache exactly once (no
  // bisections on the clean path).
  EXPECT_EQ(engine.stats().bisections, 0u);
  EXPECT_EQ(engine.replay_cache().stats().lookups,
            engine.stats().micro_batches);
}

TEST_F(ReplayTest, FuzzPoisonedBatchesIsolateTypedFaults) {
  replay::set_replay_enabled(true);
  data::Dataset ds = identical_rows(4, 93);
  model::CHGNet net(tiny_config(), 15);
  serve::EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.cache_capacity = 0;
  // Poison request slot 1 of every tick with a NaN position: the fused
  // batch trips the watchdog and bisection must isolate exactly slot 1.
  cfg.corrupt_batch = [](data::Batch& b,
                         const std::vector<std::size_t>& ids) {
    for (std::size_t s = 0; s < ids.size(); ++s) {
      if (ids[s] != 1) continue;
      const auto a0 =
          static_cast<index_t>(b.atom_first[static_cast<std::size_t>(s)]);
      b.cart.data()[a0 * 3] = std::numeric_limits<float>::quiet_NaN();
    }
  };
  serve::InferenceEngine engine(net, cfg);

  for (int tick = 0; tick < 8; ++tick) {
    for (index_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(engine.submit(ds[i].crystal).ok());
    }
    const auto replies = engine.drain();
    ASSERT_EQ(replies.size(), 4u);
    for (std::size_t i = 0; i < replies.size(); ++i) {
      if (i == 1) {
        ASSERT_FALSE(replies[i].ok());
        EXPECT_EQ(replies[i].code(), serve::ErrorCode::kNumericFault);
      } else {
        ASSERT_TRUE(replies[i].ok()) << "tick " << tick << " slot " << i;
        EXPECT_TRUE(std::isfinite(replies[i].value().energy));
      }
    }
  }
  // Reconciliation: each micro-batch acquires once and each bisection adds
  // its two half-spans.
  EXPECT_EQ(engine.replay_cache().stats().lookups,
            engine.stats().micro_batches + 2 * engine.stats().bisections);
  EXPECT_GT(engine.stats().bisections, 0u);
  EXPECT_EQ(engine.stats().isolated_faults, 8u);
}

// ---------------------------------------------------------------------------
// Counters vs reset race
// ---------------------------------------------------------------------------

TEST_F(ReplayTest, ReplayCountersSurviveConcurrentReset) {
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.emplace_back([] {
    for (int i = 0; i < kIters; ++i) {
      perf::track_replay_hit();
      perf::track_replay_miss();
    }
  });
  threads.emplace_back([] {
    for (int i = 0; i < kIters; ++i) {
      perf::track_replay_fallback();
      perf::track_replay_capture();
    }
  });
  threads.emplace_back([] {
    for (int i = 0; i < kIters; ++i) {
      perf::track_replay_plan_bytes(64);
      perf::track_replay_plan_bytes(-64);
    }
  });
  threads.emplace_back([] {
    for (int i = 0; i < kIters / 100; ++i) perf::counters().reset();
  });
  for (auto& t : threads) t.join();

  // The gauge clamps at zero when a reset lands between a +delta and its
  // -delta, so it can only retain balanced leftovers -- never wrap.
  const perf::Counters before = perf::counters().snapshot();
  EXPECT_LE(before.replay_plan_bytes,
            static_cast<std::uint64_t>(kIters) * 64);
  perf::counters().reset();
  const perf::Counters after = perf::counters().snapshot();
  EXPECT_EQ(after.replay_hits, 0u);
  EXPECT_EQ(after.replay_misses, 0u);
  EXPECT_EQ(after.replay_fallbacks, 0u);
  EXPECT_EQ(after.replay_captures, 0u);
}

}  // namespace
}  // namespace fastchg
