// Physics-invariance property suite for the full model, parameterized over
// random seeds: translation invariance, periodic-wrap invariance, rotation
// invariance/equivariance, permutation invariance, batch-composition
// independence, size extensivity (supercell), and determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "chgnet/model.hpp"
#include "data/batch.hpp"
#include "data/dataset.hpp"

namespace fastchg::model {
namespace {

using data::Crystal;
using data::Dataset;

ModelConfig tiny_cfg(bool decoupled = false) {
  ModelConfig cfg;
  cfg.feat_dim = 12;
  cfg.num_radial = 7;
  cfg.num_angular = 7;
  cfg.num_layers = 2;
  cfg.batched_basis = true;
  cfg.decoupled_heads = decoupled;
  return cfg;
}

Crystal random_structure(std::uint64_t seed) {
  Rng rng(seed);
  data::GeneratorConfig g;
  g.min_atoms = 4;
  g.max_atoms = 8;
  return data::random_crystal(rng, g);
}

/// Model energies per atom for a single structure.
std::vector<float> energies(const CHGNet& net, const Crystal& c) {
  Dataset ds = Dataset::from_crystals({c}, {}, {}, /*relabel=*/false);
  data::Batch b = data::collate_indices(ds, {0});
  return net.forward(b, ForwardMode::kEval).energy_per_atom.value().to_vector();
}

class Invariance : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CHGNet net{tiny_cfg(), 100};
};

TEST_P(Invariance, TranslationLeavesEnergyUnchanged) {
  Crystal c = random_structure(GetParam());
  const std::vector<float> e0 = energies(net, c);
  Crystal shifted = c;
  for (auto& f : shifted.frac) {
    f[0] += 0.237;
    f[1] += 0.411;
    f[2] += 0.059;
  }
  const std::vector<float> e1 = energies(net, shifted);
  ASSERT_EQ(e0.size(), e1.size());
  EXPECT_NEAR(e0[0], e1[0], 2e-4f);
}

TEST_P(Invariance, PeriodicWrapLeavesEnergyUnchanged) {
  Crystal c = random_structure(GetParam() + 1);
  const std::vector<float> e0 = energies(net, c);
  Crystal wrapped = c;
  // Push atoms outside [0,1); the neighbour search must see the same
  // periodic structure.
  wrapped.frac[0][0] += 1.0;
  wrapped.frac[1][1] -= 2.0;
  const std::vector<float> e1 = energies(net, wrapped);
  EXPECT_NEAR(e0[0], e1[0], 2e-4f);
}

TEST_P(Invariance, RotationLeavesEnergyUnchanged) {
  Crystal c = random_structure(GetParam() + 2);
  const std::vector<float> e0 = energies(net, c);
  Rng rng(GetParam());
  const double a = rng.uniform(0.1, 3.0);
  const double b = rng.uniform(0.1, 3.0);
  // Compose two axis rotations for a generic orientation.
  const data::Mat3 rz = {{{std::cos(a), -std::sin(a), 0},
                          {std::sin(a), std::cos(a), 0},
                          {0, 0, 1}}};
  const data::Mat3 rx = {{{1, 0, 0},
                          {0, std::cos(b), -std::sin(b)},
                          {0, std::sin(b), std::cos(b)}}};
  Crystal rot = c;
  rot.lattice = data::mat_mul(c.lattice, data::mat_mul(rz, rx));
  const std::vector<float> e1 = energies(net, rot);
  EXPECT_NEAR(e0[0], e1[0], 5e-4f);
}

TEST_P(Invariance, DerivativeForcesAreRotationEquivariant) {
  // The reference readout F = -dE/dx inherits equivariance from the energy;
  // this is the counterpart to the force head's analytic proof (Eq. 8).
  Crystal c = random_structure(GetParam() + 3);
  const double ang = 1.1;
  const data::Mat3 rot = {{{std::cos(ang), -std::sin(ang), 0},
                           {std::sin(ang), std::cos(ang), 0},
                           {0, 0, 1}}};
  Crystal cr = c;
  cr.lattice = data::mat_mul(c.lattice, rot);

  auto forces_of = [&](const Crystal& cc) {
    Dataset ds = Dataset::from_crystals({cc}, {}, {}, false);
    data::Batch b = data::collate_indices(ds, {0});
    return net.forward(b, ForwardMode::kEval).forces.value().to_vector();
  };
  const auto f0 = forces_of(c);
  const auto f1 = forces_of(cr);
  for (std::size_t atom = 0; atom < f0.size() / 3; ++atom) {
    for (int j = 0; j < 3; ++j) {
      double expect = 0.0;
      for (int k = 0; k < 3; ++k) expect += f0[atom * 3 + k] * rot[k][j];
      EXPECT_NEAR(f1[atom * 3 + j], expect, 5e-3) << "atom " << atom;
    }
  }
}

TEST_P(Invariance, AtomPermutationPermutesOutputs) {
  Crystal c = random_structure(GetParam() + 4);
  const std::vector<float> e0 = energies(net, c);
  // Reverse the atom order.
  Crystal perm = c;
  std::reverse(perm.frac.begin(), perm.frac.end());
  std::reverse(perm.species.begin(), perm.species.end());
  const std::vector<float> e1 = energies(net, perm);
  EXPECT_NEAR(e0[0], e1[0], 2e-4f);  // per-structure energy invariant
}

TEST_P(Invariance, BatchCompositionIndependence) {
  // A structure's prediction must not depend on which other structures
  // share its batch (disjoint-union batching).
  Crystal c = random_structure(GetParam() + 5);
  Crystal other = random_structure(GetParam() + 500);
  Dataset solo = Dataset::from_crystals({c}, {}, {}, false);
  Dataset both = Dataset::from_crystals({other, c}, {}, {}, false);
  data::Batch b1 = data::collate_indices(solo, {0});
  data::Batch b2 = data::collate_indices(both, {0, 1});
  const float e_solo =
      net.forward(b1, ForwardMode::kEval).energy_per_atom.value().data()[0];
  const float e_batched =
      net.forward(b2, ForwardMode::kEval).energy_per_atom.value().data()[1];
  EXPECT_NEAR(e_solo, e_batched, 2e-4f);
}

TEST_P(Invariance, SizeExtensivity) {
  // Doubling the cell must leave the energy per atom unchanged (message
  // passing with finite cutoffs is exactly size-extensive).
  Crystal c = random_structure(GetParam() + 6);
  Crystal super = data::make_supercell(c, 2, 1, 1);
  const float e1 = energies(net, c)[0];
  const float e2 = energies(net, super)[0];
  EXPECT_NEAR(e1, e2, 5e-4f);
}

TEST_P(Invariance, DeterministicForward) {
  Crystal c = random_structure(GetParam() + 7);
  EXPECT_EQ(energies(net, c), energies(net, c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Invariance,
                         ::testing::Values(501, 502, 503, 504));

TEST(InvarianceDecoupled, ForceHeadNetForceNotConstrainedButFinite) {
  // Direct force prediction does not enforce momentum conservation (a known
  // trade-off of decoupled heads); forces must still be finite and bounded.
  CHGNet net(tiny_cfg(true), 101);
  Crystal c = random_structure(901);
  Dataset ds = Dataset::from_crystals({c}, {}, {}, false);
  data::Batch b = data::collate_indices(ds, {0});
  auto f = net.forward(b, ForwardMode::kEval).forces.value().to_vector();
  for (float v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::fabs(v), 1e3f);
  }
}

TEST(InvarianceDecoupled, DerivativeForcesSumToZero) {
  // In contrast, derivative forces satisfy Newton's third law exactly
  // (translation invariance of E).
  CHGNet net(tiny_cfg(false), 102);
  Crystal c = random_structure(902);
  Dataset ds = Dataset::from_crystals({c}, {}, {}, false);
  data::Batch b = data::collate_indices(ds, {0});
  auto f = net.forward(b, ForwardMode::kEval).forces.value().to_vector();
  for (int d = 0; d < 3; ++d) {
    double total = 0.0;
    for (std::size_t atom = 0; atom < f.size() / 3; ++atom) {
      total += f[atom * 3 + d];
    }
    EXPECT_NEAR(total, 0.0, 2e-3) << "direction " << d;
  }
}

TEST(InvarianceSupercell, SupercellGeometry) {
  Crystal c = random_structure(903);
  Crystal s = data::make_supercell(c, 2, 3, 1);
  EXPECT_EQ(s.natoms(), c.natoms() * 6);
  EXPECT_NEAR(s.volume(), c.volume() * 6.0, 1e-9);
  // Fractional coordinates stay inside the new cell.
  for (const auto& f : s.frac) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(f[d], 0.0);
      EXPECT_LT(f[d], 1.0);
    }
  }
}

}  // namespace
}  // namespace fastchg::model
