// Tests for charge inference from magmoms (CHGNet's charge-informed
// post-processing) and for the MD observables (RDF, MSD) and thermostats.
#include <gtest/gtest.h>

#include <cmath>

#include "chgnet/charge.hpp"
#include "md/md.hpp"
#include "md/observables.hpp"

namespace fastchg {
namespace {

// ---------------------------------------------------------------------------
// charge inference
// ---------------------------------------------------------------------------

TEST(ChargeStates, DeterministicCatalog) {
  for (index_t z = 1; z <= 89; ++z) {
    auto a = model::charge_states(z);
    auto b = model::charge_states(z);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GE(a.size(), 2u);
    ASSERT_LE(a.size(), 4u);
    for (std::size_t s = 0; s < a.size(); ++s) {
      EXPECT_EQ(a[s].oxidation, b[s].oxidation);
      EXPECT_GE(a[s].expected_magmom, 0.0);
    }
    // Oxidation states are distinct and ordered.
    for (std::size_t s = 1; s < a.size(); ++s) {
      EXPECT_GT(a[s].oxidation, a[s - 1].oxidation);
    }
  }
}

TEST(ChargeInference, PicksNearestStateForExactMoments) {
  // Give each atom exactly the moment of one catalog state; without a
  // neutrality conflict the assignment must reproduce those states.
  std::vector<index_t> species{25, 25, 8};
  std::vector<double> magmoms;
  std::vector<int> expect;
  int total = 0;
  for (index_t z : species) {
    auto states = model::charge_states(z);
    magmoms.push_back(states[0].expected_magmom);
    expect.push_back(states[0].oxidation);
    total += states[0].oxidation;
  }
  auto res = model::infer_charges(species, magmoms);
  if (total == 0) {
    EXPECT_EQ(res.oxidation, expect);
    EXPECT_NEAR(res.penalty, 0.0, 1e-12);
  } else {
    // Neutrality repair may move some atoms, but never below zero penalty.
    EXPECT_GE(res.penalty, 0.0);
  }
}

TEST(ChargeInference, NeutralityRepairReachesZeroWhenPossible) {
  // Two atoms of a species whose catalog spans at least two states with
  // opposite-signed adjustments: build a mix that can cancel.
  // Species 11 and 17 chosen arbitrarily; we synthesize moments far from
  // any state so the repair is driven by charge alone.
  std::vector<index_t> species;
  std::vector<double> magmoms;
  for (int rep = 0; rep < 6; ++rep) {
    species.push_back(11);
    magmoms.push_back(0.7);
    species.push_back(17);
    magmoms.push_back(0.3);
  }
  auto res = model::infer_charges(species, magmoms);
  // The greedy repair must never increase |total| and must terminate.
  EXPECT_LE(std::abs(res.total_charge), 12);
  if (res.neutral) {
    EXPECT_EQ(res.total_charge, 0);
  }
}

TEST(ChargeInference, SizesMustMatch) {
  EXPECT_THROW(model::infer_charges({1, 2}, {0.5}), Error);
}

TEST(ChargeInference, PenaltyReflectsDeviation) {
  std::vector<index_t> species{30};
  auto states = model::charge_states(30);
  // Moment halfway off the best state: penalty equals that deviation when
  // no repair is needed or possible toward neutrality improvement.
  const double m = states[0].expected_magmom + 0.05;
  auto res = model::infer_charges(species, {m});
  EXPECT_GE(res.penalty, 0.049);
}

// ---------------------------------------------------------------------------
// observables
// ---------------------------------------------------------------------------

using md::RdfAccumulator;
using md::MsdTracker;

TEST(Rdf, IdealGasIsFlat) {
  // Many random uniform snapshots: g(r) ~ 1 away from r=0.
  Rng rng(21);
  RdfAccumulator rdf(4.0, 8);
  for (int snap = 0; snap < 24; ++snap) {
    data::Crystal c;
    c.lattice = {{{12, 0, 0}, {0, 12, 0}, {0, 0, 12}}};
    for (int i = 0; i < 40; ++i) {
      c.frac.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
      c.species.push_back(1);
    }
    rdf.add_snapshot(c);
  }
  auto g = rdf.g();
  // Beyond the first bin the gas is uncorrelated: g in [0.6, 1.4].
  for (std::size_t b = 2; b < g.size(); ++b) {
    EXPECT_GT(g[b], 0.6) << "bin " << b;
    EXPECT_LT(g[b], 1.4) << "bin " << b;
  }
}

TEST(Rdf, CrystalPeakAtLatticeSpacing) {
  // Simple cubic, a = 3: strong peak in the bin containing r = 3.
  data::Crystal c;
  c.lattice = {{{12, 0, 0}, {0, 12, 0}, {0, 0, 12}}};
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      for (int z = 0; z < 4; ++z) {
        c.frac.push_back({x / 4.0, y / 4.0, z / 4.0});
        c.species.push_back(6);
      }
  RdfAccumulator rdf(4.0, 16);
  rdf.add_snapshot(c);
  auto g = rdf.g();
  const auto peak_bin = static_cast<std::size_t>(3.0 / (4.0 / 16.0));
  double max_g = 0;
  std::size_t max_bin = 0;
  for (std::size_t b = 0; b < g.size(); ++b) {
    if (g[b] > max_g) {
      max_g = g[b];
      max_bin = b;
    }
  }
  EXPECT_NEAR(static_cast<double>(max_bin), static_cast<double>(peak_bin),
              1.0);
  EXPECT_GT(max_g, 3.0);  // sharply peaked vs ideal gas
}

TEST(Msd, StationaryAtomsHaveZeroMsd) {
  Rng rng(22);
  data::GeneratorConfig g;
  g.min_atoms = 4;
  g.max_atoms = 6;
  data::Crystal c = data::random_crystal(rng, g);
  MsdTracker msd(c);
  msd.update(c);
  msd.update(c);
  EXPECT_DOUBLE_EQ(msd.msd(), 0.0);
}

TEST(Msd, UnwrapsAcrossPeriodicBoundary) {
  data::Crystal c;
  c.lattice = {{{10, 0, 0}, {0, 10, 0}, {0, 0, 10}}};
  c.frac = {{0.95, 0.5, 0.5}};
  c.species = {1};
  MsdTracker msd(c);
  // Move +0.1 fractional (crossing the boundary to 0.05): displacement must
  // be +1 A, not -9 A.
  data::Crystal c2 = c;
  c2.frac[0][0] = 0.05;
  msd.update(c2);
  EXPECT_NEAR(msd.msd(), 1.0, 1e-9);
  // Keep walking in the same direction; distances accumulate.
  data::Crystal c3 = c2;
  c3.frac[0][0] = 0.15;
  msd.update(c3);
  EXPECT_NEAR(msd.msd(), 4.0, 1e-9);
}

// ---------------------------------------------------------------------------
// thermostats
// ---------------------------------------------------------------------------

model::ModelConfig tiny_cfg() {
  model::ModelConfig cfg = model::ModelConfig::fast();
  cfg.feat_dim = 8;
  cfg.num_radial = 5;
  cfg.num_angular = 5;
  cfg.num_layers = 1;
  return cfg;
}

data::Crystal md_crystal(std::uint64_t seed) {
  Rng rng(seed);
  data::GeneratorConfig g;
  g.min_atoms = 6;
  g.max_atoms = 8;
  return data::random_crystal(rng, g);
}

TEST(Thermostat, BerendsenPullsTemperatureTowardTarget) {
  model::CHGNet net(tiny_cfg(), 31);
  md::MDConfig cfg;
  cfg.dt_fs = 0.5;
  cfg.init_temperature_k = 900.0;  // start hot
  cfg.ensemble = md::Ensemble::kNVTBerendsen;
  cfg.target_temperature_k = 300.0;
  cfg.tau_fs = 5.0;  // strong coupling for a short test
  md::MDSimulator sim(net, md_crystal(41), cfg);
  const double t_start = sim.temperature();
  sim.step(30);
  const double t_end = sim.temperature();
  EXPECT_LT(std::fabs(t_end - 300.0), std::fabs(t_start - 300.0));
}

TEST(Thermostat, LangevinEquilibratesNearTarget) {
  model::CHGNet net(tiny_cfg(), 32);
  md::MDConfig cfg;
  cfg.dt_fs = 0.5;
  cfg.init_temperature_k = 20.0;  // start cold
  cfg.ensemble = md::Ensemble::kNVTLangevin;
  cfg.target_temperature_k = 500.0;
  cfg.friction_fs = 0.5;  // strong coupling
  md::MDSimulator sim(net, md_crystal(42), cfg);
  sim.step(40);
  // Average over a few more steps to smooth instantaneous fluctuations.
  double t_acc = 0.0;
  for (int i = 0; i < 10; ++i) {
    sim.step(2);
    t_acc += sim.temperature();
  }
  const double t_mean = t_acc / 10.0;
  EXPECT_GT(t_mean, 150.0);
  EXPECT_LT(t_mean, 1200.0);
}

TEST(Thermostat, NVEDoesNotRescale) {
  model::CHGNet net(tiny_cfg(), 33);
  md::MDConfig nve;
  nve.dt_fs = 0.25;
  nve.ensemble = md::Ensemble::kNVE;
  md::MDSimulator sim(net, md_crystal(43), nve);
  const double e0 = sim.total_energy();
  sim.step(10);
  // NVE: energy approximately conserved (loose bound; tiny random model).
  EXPECT_NEAR(sim.total_energy(), e0,
              0.1 * std::max(1.0, std::fabs(e0)));
}

}  // namespace
}  // namespace fastchg
