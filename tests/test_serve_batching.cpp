// Equivalence / fuzz battery for the dynamic micro-batched serving pipeline
// (serve/batcher.hpp, serve/struct_cache.hpp, InferenceEngine::drain):
//
//   * property test: fused multi-request forwards reproduce single-request
//     forwards (E/F/S/magmom within 1e-10) for seeded random crystals,
//     across kernel thread counts and replica-worker fan-outs;
//   * poisoned-batch isolation: one NaN structure in a fused batch yields
//     kNumericFault for exactly that request via bisection;
//   * structure-cache behavior: deterministic LRU eviction, counter
//     reconciliation, cache-on == cache-off replies;
//   * fuzz: hundreds of corrupted crystals plus an injected fault plan
//     through submit/drain -- every reply typed, overflow -> kOverloaded,
//     zero crashes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/parallel_for.hpp"
#include "data/batch.hpp"
#include "data/generator.hpp"
#include "parallel/fault.hpp"
#include "perf/counters.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/fuzz.hpp"
#include "serve/struct_cache.hpp"

namespace fastchg::serve {
namespace {

constexpr double kTol = 1e-10;

model::ModelConfig tiny_config(bool decoupled = true) {
  model::ModelConfig cfg;
  cfg.feat_dim = 12;
  cfg.num_radial = 7;
  cfg.num_angular = 7;
  cfg.num_layers = 2;
  cfg.batched_basis = true;
  cfg.fused_kernels = true;
  cfg.factored_envelope = true;
  cfg.decoupled_heads = decoupled;
  return cfg;
}

data::Crystal seeded_crystal(std::uint64_t seed, index_t min_atoms = 2,
                             index_t max_atoms = 10) {
  Rng rng(seed);
  data::GeneratorConfig g;
  g.min_atoms = min_atoms;
  g.max_atoms = max_atoms;
  return data::random_crystal(rng, g);
}

/// Single-request reference: one structure, one forward, no batching.
Prediction single_forward(const model::CHGNet& net, const data::Crystal& c,
                          const data::GraphConfig& gcfg) {
  auto s = build_sample(c, gcfg);
  data::Batch b = data::collate({s.get()}, /*with_labels=*/false);
  model::ModelOutput out = net.forward(b, model::ForwardMode::kEval);
  return unpack_structure(out, b, 0);
}

void expect_equivalent(const Prediction& got, const Prediction& want,
                       const std::string& what) {
  EXPECT_NEAR(got.energy, want.energy, kTol) << what;
  ASSERT_EQ(got.forces.size(), want.forces.size()) << what;
  for (std::size_t i = 0; i < want.forces.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(got.forces[i][d], want.forces[i][d], kTol)
          << what << " force[" << i << "][" << d << "]";
    }
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(got.stress[i][j], want.stress[i][j], kTol)
          << what << " stress[" << i << "][" << j << "]";
    }
  }
  ASSERT_EQ(got.magmom.size(), want.magmom.size()) << what;
  for (std::size_t i = 0; i < want.magmom.size(); ++i) {
    EXPECT_NEAR(got.magmom[i], want.magmom[i], kTol)
        << what << " magmom[" << i << "]";
  }
}

// ------------------------------------------------- fused-batch equivalence --

// The central property the whole pipeline rests on: a structure served out
// of a fused disjoint-union forward is equivalent (<= 1e-10, in practice
// bit-identical) to the same structure served alone -- for every fused
// position, worker fan-out, and kernel thread count.
TEST(BatchEquivalence, FusedMatchesSingleAcrossThreadsAndWorkers) {
  const int restore_threads = num_threads();
  model::CHGNet net(tiny_config(), 7);
  data::GraphConfig gcfg;

  std::vector<data::Crystal> crystals;
  std::vector<BatchItem> items;
  for (std::uint64_t seed = 100; seed < 111; ++seed) {
    crystals.push_back(seeded_crystal(seed));
    items.push_back(
        BatchItem{build_sample(crystals.back(), gcfg), crystals.size() - 1});
  }

  for (int threads : {1, 4}) {
    set_num_threads(threads);
    std::vector<Prediction> singles;
    for (const data::Crystal& c : crystals) {
      singles.push_back(single_forward(net, c, gcfg));
    }
    for (int workers : {1, 3}) {
      MicroBatcher::Config bc;
      bc.max_batch = 4;  // 11 items -> micro-batches of 4, 4, 3
      bc.workers = workers;
      BatchRunStats stats;
      auto replies = MicroBatcher(bc).run(net, items, &stats);
      ASSERT_EQ(replies.size(), crystals.size());
      EXPECT_EQ(stats.micro_batches, 3u);
      EXPECT_EQ(stats.served, crystals.size());
      EXPECT_EQ(stats.bisections, 0u);
      for (std::size_t i = 0; i < replies.size(); ++i) {
        ASSERT_TRUE(replies[i].ok()) << replies[i].error().message;
        std::ostringstream what;
        what << "threads=" << threads << " workers=" << workers
             << " struct=" << i;
        expect_equivalent(replies[i].value(), singles[i], what.str());
      }
    }
  }
  set_num_threads(restore_threads);
}

// The engine's batched drain must agree with its own single-request
// reference path (predict) end to end.
TEST(BatchEquivalence, EngineDrainMatchesPredict) {
  model::CHGNet net(tiny_config(), 11);
  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_workers = 2;
  cfg.queue_capacity = 32;
  InferenceEngine batched(net, cfg);
  InferenceEngine reference(net, EngineConfig{});

  std::vector<data::Crystal> crystals;
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    crystals.push_back(seeded_crystal(seed, 3, 8));
    ASSERT_TRUE(batched.submit(crystals.back()).ok());
  }
  auto replies = batched.drain();
  ASSERT_EQ(replies.size(), crystals.size());
  EXPECT_GE(batched.stats().micro_batches, 2u);  // 10 requests, max_batch 8
  EXPECT_EQ(batched.stats().served, crystals.size());

  for (std::size_t i = 0; i < crystals.size(); ++i) {
    ASSERT_TRUE(replies[i].ok()) << replies[i].error().message;
    auto want = reference.predict(crystals[i]);
    ASSERT_TRUE(want.ok());
    expect_equivalent(replies[i].value(), want.value(),
                      "drain vs predict, struct " + std::to_string(i));
  }
}

// ------------------------------------------------ poisoned-batch isolation --

// One poisoned structure inside a fused batch: bisection must isolate it as
// the only kNumericFault while every batchmate still gets its (untouched)
// reply.  The corruption rides the corrupt_batch seam and follows the
// request id through re-collation, exactly like a model-side NaN would.
TEST(BatchIsolation, PoisonedRequestFailsAloneViaBisection) {
  model::CHGNet net(tiny_config(), 13);
  data::GraphConfig gcfg;

  const std::size_t n = 8;
  const std::size_t poisoned = 5;
  std::vector<data::Crystal> crystals;
  std::vector<BatchItem> items;
  std::vector<Prediction> singles;
  for (std::size_t i = 0; i < n; ++i) {
    crystals.push_back(seeded_crystal(400 + i, 4, 6));
    items.push_back(BatchItem{build_sample(crystals.back(), gcfg), i});
    singles.push_back(single_forward(net, crystals.back(), gcfg));
  }

  MicroBatcher::Config bc;
  bc.max_batch = static_cast<index_t>(n);
  bc.corrupt_batch = [&](data::Batch& b, const std::vector<std::size_t>& ids) {
    for (std::size_t s = 0; s < ids.size(); ++s) {
      if (ids[s] != poisoned) continue;
      float* cart = b.cart.data();
      for (index_t a = b.atom_first[s]; a < b.atom_first[s + 1]; ++a) {
        for (int d = 0; d < 3; ++d) {
          cart[a * 3 + d] = std::numeric_limits<float>::quiet_NaN();
        }
      }
    }
  };

  const std::uint64_t isolated_before = perf::event_count("serve.batch.isolated");
  BatchRunStats stats;
  auto replies = MicroBatcher(bc).run(net, items, &stats);
  ASSERT_EQ(replies.size(), n);

  for (std::size_t i = 0; i < n; ++i) {
    if (i == poisoned) {
      ASSERT_FALSE(replies[i].ok()) << "poisoned request served";
      EXPECT_EQ(replies[i].code(), ErrorCode::kNumericFault);
      EXPECT_NE(replies[i].error().message.find("isolated by batch bisection"),
                std::string::npos)
          << replies[i].error().message;
    } else {
      ASSERT_TRUE(replies[i].ok())
          << "batchmate " << i << ": " << replies[i].error().message;
      expect_equivalent(replies[i].value(), singles[i],
                        "batchmate " + std::to_string(i));
    }
  }
  // 8 -> 4 -> 2 -> 1: three levels of splitting down the poisoned path.
  EXPECT_GE(stats.bisections, 3u);
  EXPECT_EQ(stats.isolated_faults, 1u);
  EXPECT_EQ(stats.served, n - 1);
  EXPECT_EQ(perf::event_count("serve.batch.isolated"), isolated_before + 1);
}

// ---------------------------------------------------------- structure cache --

TEST(StructCache, FingerprintCanonicalizesEquivalentGeometry) {
  data::GraphConfig gcfg;
  data::Crystal a = seeded_crystal(500);
  a.frac[0][0] = 0.25;  // exactly representable, so the wrap is exact
  a.frac[1][2] = 0.5;
  data::Crystal b = a;
  b.frac[0][0] = 1.25;  // out-of-cell image of the same structure
  b.frac[1][2] = -1.5;
  EXPECT_EQ(StructureCache::fingerprint(a, gcfg),
            StructureCache::fingerprint(b, gcfg));

  data::Crystal c = a;
  c.frac[0][0] = 0.0;
  data::Crystal d = a;
  d.frac[0][0] = -0.0;
  EXPECT_EQ(StructureCache::fingerprint(c, gcfg),
            StructureCache::fingerprint(d, gcfg));

  data::Crystal e = a;
  e.frac[0][0] = a.frac[0][0] + 0.125;  // genuinely different geometry
  EXPECT_NE(StructureCache::fingerprint(a, gcfg),
            StructureCache::fingerprint(e, gcfg));
}

TEST(StructCache, DeterministicLruEvictionOrder) {
  data::GraphConfig gcfg;
  StructureCache cache(/*capacity=*/2, gcfg);
  data::Crystal a = seeded_crystal(510), b = seeded_crystal(511),
                c = seeded_crystal(512), d = seeded_crystal(513);

  (void)cache.lookup(a);
  (void)cache.lookup(b);
  EXPECT_TRUE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));

  (void)cache.lookup(c);  // capacity 2: least-recent (a) is displaced
  EXPECT_FALSE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  EXPECT_TRUE(cache.contains(c));

  (void)cache.lookup(b);  // refresh b to most-recent
  (void)cache.lookup(d);  // now c is least-recent and is displaced
  EXPECT_TRUE(cache.contains(b));
  EXPECT_TRUE(cache.contains(d));
  EXPECT_FALSE(cache.contains(c));

  const CacheStats& st = cache.stats();
  EXPECT_EQ(st.lookups, 5u);
  EXPECT_EQ(st.misses, 4u);  // a, b, c, d
  EXPECT_EQ(st.hits, 1u);    // the b refresh
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(StructCache, CountersReconcileWithRequestStream) {
  model::CHGNet net(tiny_config(), 17);
  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.cache_capacity = 32;
  cfg.queue_capacity = 8;
  InferenceEngine eng(net, cfg);

  // 3 rounds over the same 8 unique structures, drained per round so every
  // repeat sees the stored result of an earlier tick.
  const std::size_t rounds = 3, unique = 8;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t u = 0; u < unique; ++u) {
      ASSERT_TRUE(eng.submit(seeded_crystal(600 + u, 3, 6)).ok());
    }
    for (const auto& reply : eng.drain()) {
      ASSERT_TRUE(reply.ok()) << reply.error().message;
      EXPECT_EQ(reply.value().cached, r > 0);
    }
  }

  const CacheStats& cs = eng.cache().stats();
  const EngineStats& es = eng.stats();
  EXPECT_EQ(es.submitted, rounds * unique);
  EXPECT_EQ(es.served, rounds * unique);
  EXPECT_EQ(cs.lookups, rounds * unique);
  EXPECT_EQ(cs.misses, unique);
  EXPECT_EQ(cs.hits, (rounds - 1) * unique);
  EXPECT_EQ(cs.result_hits, (rounds - 1) * unique);
  EXPECT_EQ(cs.evictions, 0u);
  EXPECT_EQ(es.cached, (rounds - 1) * unique);
  // Every request is accounted for exactly once across the tallies.
  EXPECT_EQ(cs.hits + cs.misses, es.submitted);
}

TEST(StructCache, CacheOnAndOffProduceIdenticalReplies) {
  model::CHGNet net(tiny_config(), 19);
  EngineConfig on;
  on.max_batch = 4;
  on.cache_capacity = 16;
  on.queue_capacity = 64;
  EngineConfig off = on;
  off.cache_capacity = 0;
  InferenceEngine cached(net, on);
  InferenceEngine uncached(net, off);

  // 6 uniques, each requested three times across separate drains.
  std::vector<data::Crystal> crystals;
  for (std::uint64_t seed = 700; seed < 706; ++seed) {
    crystals.push_back(seeded_crystal(seed, 3, 7));
  }
  std::vector<Result<Prediction>> from_cached, from_uncached;
  for (int round = 0; round < 3; ++round) {
    for (const data::Crystal& c : crystals) {
      ASSERT_TRUE(cached.submit(c).ok());
      ASSERT_TRUE(uncached.submit(c).ok());
    }
    for (auto& r : cached.drain()) from_cached.push_back(std::move(r));
    for (auto& r : uncached.drain()) from_uncached.push_back(std::move(r));
  }

  ASSERT_EQ(from_cached.size(), from_uncached.size());
  for (std::size_t i = 0; i < from_cached.size(); ++i) {
    ASSERT_TRUE(from_cached[i].ok());
    ASSERT_TRUE(from_uncached[i].ok());
    expect_equivalent(from_cached[i].value(), from_uncached[i].value(),
                      "cache-on vs cache-off, reply " + std::to_string(i));
    EXPECT_FALSE(from_uncached[i].value().cached);
  }
  EXPECT_GT(cached.cache().stats().result_hits, 0u);
  EXPECT_EQ(uncached.cache().stats().hits, 0u);
}

// ----------------------------------------------------------------- fuzzing --

// Bursty fuzzed traffic (50% corrupted crystals) plus an injected fault plan
// (transient failures and stragglers) through the micro-batched queue.
// Every burst overflows the admission queue on purpose.  The pipeline must
// return one typed reply per admitted request, type the overflow as
// kOverloaded, and never crash or emit a non-finite success.
TEST(BatchFuzz, CorruptedStreamStaysTyped) {
  model::CHGNet net(tiny_config(false), 23);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_workers = 2;
  cfg.cache_capacity = 16;
  cfg.queue_capacity = 8;
  InferenceEngine eng(net, cfg);
  parallel::FaultPlan plan = parallel::FaultPlan::random(
      /*seed=*/77, /*num_devices=*/1, /*iterations=*/600,
      /*failure_prob=*/0.04, /*straggler_prob=*/0.05);
  eng.set_fault_plan(&plan);

  Rng rng(2024);
  data::GeneratorConfig gen;
  gen.min_atoms = 2;
  gen.max_atoms = 8;

  const std::size_t bursts = 52, burst_size = 10;  // 520 fuzzed requests
  std::size_t admitted = 0, overflowed = 0, served = 0, invalid = 0,
              faulted = 0, overloaded = 0;
  for (std::size_t b = 0; b < bursts; ++b) {
    for (std::size_t i = 0; i < burst_size; ++i) {
      data::Crystal c;
      (void)fuzz_crystal(rng, c, /*corrupt_prob=*/0.5, gen);
      auto ticket = eng.submit(std::move(c));
      if (ticket.ok()) {
        ++admitted;
      } else {
        // Queue capacity 8 < burst 10: the tail of every burst must be
        // rejected with the admission-control code, nothing else.
        EXPECT_EQ(ticket.code(), ErrorCode::kOverloaded);
        ++overflowed;
      }
    }
    for (const auto& r : eng.drain()) {
      if (r.ok()) {
        ++served;
        EXPECT_TRUE(std::isfinite(r.value().energy));
        for (const auto& f : r.value().forces) {
          for (int d = 0; d < 3; ++d) EXPECT_TRUE(std::isfinite(f[d]));
        }
      } else {
        EXPECT_FALSE(r.error().message.empty());
        switch (r.code()) {
          case ErrorCode::kInvalidInput: ++invalid; break;
          case ErrorCode::kNumericFault: ++faulted; break;
          case ErrorCode::kOverloaded: ++overloaded; break;
          default: break;  // timeout/degraded: typed, acceptable
        }
      }
    }
    EXPECT_EQ(eng.queue_depth(), 0u);
  }

  EXPECT_EQ(admitted, bursts * cfg.queue_capacity);
  EXPECT_EQ(overflowed, bursts * (burst_size - cfg.queue_capacity));
  EXPECT_EQ(served + invalid + faulted + overloaded, admitted);
  EXPECT_GT(served, 100u);   // valid structures actually got answers
  EXPECT_GT(invalid, 50u);   // corrupted structures were typed, not served
  EXPECT_GT(eng.stats().micro_batches, 0u);
  EXPECT_EQ(eng.stats().served, served);
  EXPECT_EQ(eng.stats().rejected_invalid, invalid);
}

}  // namespace
}  // namespace fastchg::serve
