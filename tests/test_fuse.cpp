// Offline fusion on the replay tape (core/fuse.hpp) -- the differential
// proof the pass is correct:
//
//   * differential harness: seeded random op chains (elementwise DAGs with
//     broadcasts, gather prologues, scatter/reduction epilogues, opaque
//     matmul barriers) captured fused and unfused, replayed over fresh
//     random batches -- every tap byte-identical between the two programs
//     and against an eager re-evaluation (max diff exactly 0.0);
//   * integration differentials: trainer (weights + byte-identical
//     checkpoints), every DP replica, and the fused serve forward, fusion
//     on vs off;
//   * property fuzz of the legality checker: find_spans over randomly
//     generated (metadata-only) tapes never violates the span invariants
//     -- bounds, ordering, opaque exclusion, terminator placement,
//     geometry agreement, register-file cap -- and fuse_tape conserves
//     step counts against the spans it reports;
//   * property fuzz of the memory planner: random lifetime sets
//     (overlapping, nested, zero-length) always produce valid 64B-aligned
//     plans no smaller than the max-live lower bound; seed-logged;
//   * golden tapes: exact kernel/span counts for the trainer, DP and serve
//     programs at a fixed topology, so over- or under-fusion fails here
//     before it silently changes perf;
//   * replay_plan_bytes gauge audit across invalidate -> recapture ->
//     re-fuse cycles (no drift over 3 rounds);
//   * kill switch: FASTCHG_FUSE=off captures the raw tape (zero spans,
//     counted == raw) and still replays bit-exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "autograd/ops.hpp"
#include "core/fuse.hpp"
#include "core/memplan.hpp"
#include "core/replay.hpp"
#include "data/dataset.hpp"
#include "parallel/data_parallel.hpp"
#include "perf/counters.hpp"
#include "serve/engine.hpp"
#include "train/trainer.hpp"

namespace fastchg {
namespace {

namespace fuse = replay::fuse;

using replay::BufferLife;
using replay::MemPlan;
using replay::Program;
using replay::ProgramCache;
using replay::Recorder;
using replay::RecorderScope;

// Golden tape numbers for the fixed topologies below (identical_rows
// datasets + tiny_config).  They change only when the model's op schedule
// or the fusion pass changes -- update them deliberately, with the perf
// numbers in hand.
constexpr std::uint64_t kGoldenTrainerRaw = 3713;
constexpr std::uint64_t kGoldenTrainerCounted = 1225;
constexpr std::size_t kGoldenTrainerSpans = 352;
constexpr std::uint64_t kGoldenServeRaw = 1260;
constexpr std::uint64_t kGoldenServeCounted = 456;
constexpr std::size_t kGoldenServeSpans = 147;
constexpr std::uint64_t kGoldenDpRaw = 2589;
constexpr std::uint64_t kGoldenDpCounted = 889;
constexpr std::size_t kGoldenDpSpans = 269;

class FuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_replay_ = replay::replay_enabled();
    prev_fuse_ = fuse::fuse_enabled();
  }
  void TearDown() override {
    replay::set_replay_enabled(prev_replay_);
    fuse::set_fuse_enabled(prev_fuse_);
  }

 private:
  bool prev_replay_ = true;
  bool prev_fuse_ = true;
};

Tensor random_tensor(std::mt19937_64& rng, const Shape& shape) {
  index_t n = 1;
  for (index_t d : shape) n *= d;
  std::vector<float> v(static_cast<std::size_t>(n));
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (float& f : v) f = dist(rng);
  return Tensor::from_vector(std::move(v), shape);
}

/// Bit-level equality: NaNs with identical payloads compare equal, so a
/// deterministic non-finite excursion in a random chain still matches.
void expect_bytes_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << what;
}

// ---------------------------------------------------------------------------
// Differential harness: random op chains, fused vs unfused vs eager
// ---------------------------------------------------------------------------

/// Deterministic random op chain over three leaves: X [N,C] (working set),
/// T [R,C] (gather table), W [C,C] (matmul barrier).  The *structure*
/// (which ops, which indices) comes from `structure_seed`; the float
/// payloads come from the leaf tensors, so one structure can be replayed
/// over many batches.  Returns the tapped tensors (reduction outputs,
/// scatter results, and the final value).
struct ChainSpec {
  std::uint64_t structure_seed = 0;
  index_t n = 6;
  index_t c = 5;
  index_t r = 4;
  int num_ops = 18;
};

std::vector<Tensor> eval_chain(const ChainSpec& cs, const Tensor& x,
                               const Tensor& t, const Tensor& w) {
  std::mt19937_64 rng(cs.structure_seed);
  ag::Var vt = ag::ops::constant(t);
  ag::Var vw = ag::ops::constant(w);
  std::vector<ag::Var> pool;  // every entry is [N,C]
  pool.push_back(ag::ops::constant(x));
  std::vector<Tensor> taps;
  auto pick = [&]() -> const ag::Var& {
    return pool[static_cast<std::size_t>(rng() % pool.size())];
  };
  for (int k = 0; k < cs.num_ops; ++k) {
    switch (rng() % 12) {
      case 0: {  // gather prologue: fresh rows from the table
        std::vector<index_t> idx(static_cast<std::size_t>(cs.n));
        for (index_t& v : idx) v = static_cast<index_t>(rng() % cs.r);
        pool.push_back(ag::ops::index_select0(vt, std::move(idx)));
        break;
      }
      case 1: {  // scatter epilogue: accumulate the value into R rows
        std::vector<index_t> idx(static_cast<std::size_t>(cs.n));
        for (index_t& v : idx) v = static_cast<index_t>(rng() % cs.r);
        taps.push_back(
            ag::ops::index_add0(cs.r, std::move(idx), pick()).value());
        break;
      }
      case 2:  // reduction epilogues
        taps.push_back(ag::ops::sum_all(pick()).value());
        break;
      case 3:
        taps.push_back(
            ag::ops::sum_dim(pick(), static_cast<index_t>(rng() % 2),
                             /*keepdim=*/false)
                .value());
        break;
      case 4: {  // binary, same shape
        const ag::Var& a = pick();
        const ag::Var& b = pick();
        switch (rng() % 3) {
          case 0:
            pool.push_back(ag::ops::add(a, b));
            break;
          case 1:
            pool.push_back(ag::ops::sub(a, b));
            break;
          default:
            pool.push_back(ag::ops::mul(a, b));
            break;
        }
        break;
      }
      case 5: {  // broadcast binary: row / col / scalar operand from a
                 // reduction of another pool value
        const ag::Var& a = pick();
        const ag::Var& b = pick();
        switch (rng() % 3) {
          case 0:
            pool.push_back(
                ag::ops::mul(a, ag::ops::sum_dim(b, 0, /*keepdim=*/true)));
            break;
          case 1:
            pool.push_back(
                ag::ops::add(a, ag::ops::sum_dim(b, 1, /*keepdim=*/true)));
            break;
          default:
            pool.push_back(ag::ops::add(a, ag::ops::sum_all(b)));
            break;
        }
        break;
      }
      case 6:  // opaque barrier in the middle of fusible material
        pool.push_back(ag::ops::matmul(pick(), vw));
        break;
      default: {  // elementwise unary (bounded ones keep values tame)
        const ag::Var& a = pick();
        switch (rng() % 8) {
          case 0:
            pool.push_back(ag::ops::tanh_op(a));
            break;
          case 1:
            pool.push_back(ag::ops::sigmoid(a));
            break;
          case 2:
            pool.push_back(ag::ops::silu(a));
            break;
          case 3:
            pool.push_back(ag::ops::neg(a));
            break;
          case 4:
            pool.push_back(ag::ops::sin_op(a));
            break;
          case 5:
            pool.push_back(ag::ops::mul_scalar(a, 0.5f));
            break;
          case 6:
            pool.push_back(ag::ops::clamp(a, -2.0f, 2.0f));
            break;
          default:
            pool.push_back(ag::ops::square(a));
            break;
        }
        break;
      }
    }
  }
  taps.push_back(pool.back().value());
  return taps;
}

std::shared_ptr<Program> capture_chain(const ChainSpec& cs, const Tensor& x,
                                       const Tensor& t, const Tensor& w) {
  Recorder rec;
  rec.bind_input(x);
  rec.bind_input(t);
  rec.bind_input(w);
  std::vector<Tensor> taps;
  {
    RecorderScope scope(rec);
    taps = eval_chain(cs, x, t, w);
  }
  for (const Tensor& tap : taps) rec.tap(tap);
  return rec.finish();
}

TEST_F(FuseTest, DifferentialRandomChainsFusedVsUnfusedVsEager) {
  replay::set_replay_enabled(true);
  for (std::uint64_t structure = 0; structure < 20; ++structure) {
    ChainSpec cs;
    cs.structure_seed = 0xc0ffee00u + structure;
    SCOPED_TRACE("structure_seed=" + std::to_string(cs.structure_seed));
    std::mt19937_64 rng(cs.structure_seed * 31 + 1);
    const Tensor x0 = random_tensor(rng, {cs.n, cs.c});
    const Tensor t0 = random_tensor(rng, {cs.r, cs.c});
    const Tensor w0 = random_tensor(rng, {cs.c, cs.c});

    fuse::set_fuse_enabled(true);
    const auto fused = capture_chain(cs, x0, t0, w0);
    fuse::set_fuse_enabled(false);
    const auto raw = capture_chain(cs, x0, t0, w0);

    // Fingerprints hash the pre-fusion tape: the kill switch must not
    // change program identity.
    EXPECT_EQ(fused->fingerprint(), raw->fingerprint());
    EXPECT_LE(fused->num_steps(), raw->num_steps());
    EXPECT_EQ(raw->fused_spans(), 0u);
    EXPECT_EQ(raw->counted_kernels(), raw->raw_counted_kernels());
    EXPECT_TRUE(replay::plan_valid(fused->plan()));
    EXPECT_TRUE(replay::plan_valid(raw->plan()));

    for (int rep = 0; rep < 3; ++rep) {
      const Tensor x = random_tensor(rng, {cs.n, cs.c});
      const Tensor t = random_tensor(rng, {cs.r, cs.c});
      const Tensor w = random_tensor(rng, {cs.c, cs.c});
      ASSERT_TRUE(fused->bind({x, t, w}, {}));
      fused->run();
      ASSERT_TRUE(raw->bind({x, t, w}, {}));
      raw->run();
      const std::vector<Tensor> eager = eval_chain(cs, x, t, w);
      ASSERT_EQ(fused->tap_count(), eager.size());
      ASSERT_EQ(raw->tap_count(), eager.size());
      for (std::size_t i = 0; i < eager.size(); ++i) {
        expect_bytes_equal(fused->tap_value(i), raw->tap_value(i),
                           "fused vs unfused tap");
        expect_bytes_equal(fused->tap_value(i), eager[i],
                           "fused vs eager tap");
      }
    }
  }
}

TEST_F(FuseTest, FusionActuallyEngagesOnChainTapes) {
  // The differential above holds trivially if fusion never fires; pin that
  // the random chains actually produce fused spans and eliminated slots.
  replay::set_replay_enabled(true);
  fuse::set_fuse_enabled(true);
  std::size_t spans = 0, removed = 0, eliminated = 0;
  for (std::uint64_t structure = 0; structure < 20; ++structure) {
    ChainSpec cs;
    cs.structure_seed = 0xc0ffee00u + structure;
    std::mt19937_64 rng(cs.structure_seed * 31 + 1);
    const Tensor x0 = random_tensor(rng, {cs.n, cs.c});
    const Tensor t0 = random_tensor(rng, {cs.r, cs.c});
    const Tensor w0 = random_tensor(rng, {cs.c, cs.c});
    const auto fused = capture_chain(cs, x0, t0, w0);
    spans += fused->fused_spans();
    removed += fused->fused_kernels_removed();
    eliminated += fused->fused_slots_eliminated();
  }
  EXPECT_GT(spans, 20u);
  EXPECT_GT(removed, 40u);
  EXPECT_GT(eliminated, 20u);
}

TEST_F(FuseTest, TappedIntermediateInsideSpanStaysMaterialized) {
  // Tap the middle of an elementwise chain: the span may still fuse, but
  // the tapped slot must keep its slab slot and exact value.
  replay::set_replay_enabled(true);
  std::mt19937_64 rng(99u);
  const Tensor x0 = random_tensor(rng, {8, 3});

  auto capture = [&](const Tensor& x, bool fuse_on) {
    fuse::set_fuse_enabled(fuse_on);
    Recorder rec;
    rec.bind_input(x);
    Tensor mid, out;
    {
      RecorderScope scope(rec);
      ag::Var a = ag::ops::tanh_op(ag::ops::constant(x));
      mid = a.value();
      out = ag::ops::mul_scalar(ag::ops::square(a), 0.25f).value();
    }
    rec.tap(mid);
    rec.tap(out);
    return rec.finish();
  };

  const auto fused = capture(x0, true);
  const auto raw = capture(x0, false);
  EXPECT_GE(fused->fused_spans(), 1u);
  const Tensor x = random_tensor(rng, {8, 3});
  ASSERT_TRUE(fused->bind({x}, {}));
  fused->run();
  ASSERT_TRUE(raw->bind({x}, {}));
  raw->run();
  expect_bytes_equal(fused->tap_value(0), raw->tap_value(0), "tapped mid");
  expect_bytes_equal(fused->tap_value(1), raw->tap_value(1), "final");
}

// ---------------------------------------------------------------------------
// Legality-checker property fuzz on synthetic tapes
// ---------------------------------------------------------------------------

/// Random metadata-only tape: closures are empty (never run), descriptors
/// are deliberately messy -- mismatched element counts, conflicting
/// geometry, opaque barriers, read-after-scatter hazards -- so find_spans
/// has to *reject* its way to legality.
struct SyntheticTape {
  std::vector<fuse::TapeStep> steps;
  std::vector<fuse::TapeSlot> slots;
};

SyntheticTape random_tape(std::mt19937_64& rng) {
  SyntheticTape tape;
  auto new_slot = [&](index_t numel, bool planned) {
    fuse::TapeSlot s;
    s.numel = numel;
    s.planned = planned;
    s.reserved = planned && rng() % 8 == 0;  // occasional tap pin
    tape.slots.push_back(s);
    return static_cast<int>(tape.slots.size() - 1);
  };
  // External leaves the tape can read from.
  const index_t n_a = 12, n_b = 20;
  std::vector<int> leaves;
  for (int i = 0; i < 3; ++i) leaves.push_back(new_slot(n_a, false));
  for (int i = 0; i < 2; ++i) leaves.push_back(new_slot(n_b, false));
  std::vector<int> values = leaves;  // slots steps may read
  auto pick_val = [&]() {
    return values[static_cast<std::size_t>(rng() % values.size())];
  };
  const int num_steps = 10 + static_cast<int>(rng() % 40);
  for (int k = 0; k < num_steps; ++k) {
    fuse::TapeStep st;
    st.counted = rng() % 4 != 0;
    // Mostly-consistent element count with deliberate 1-in-6 corruption.
    const index_t n = rng() % 6 == 0 ? n_b : n_a;
    switch (rng() % 10) {
      case 0: {  // opaque barrier
        st.op = "opaque";
        st.ins = {pick_val()};
        st.outs = {new_slot(n, true)};
        values.push_back(st.outs[0]);
        break;
      }
      case 1: {  // gather
        st.op = "gather";
        auto idx = std::make_shared<std::vector<index_t>>();
        const index_t w = rng() % 2 == 0 ? 4 : 1;
        for (index_t i = 0; i < n / w; ++i) {
          idx->push_back(static_cast<index_t>(rng() % 3));
        }
        st.desc = fuse::gather_desc(idx, 3, w);
        st.ins = {pick_val()};
        st.outs = {new_slot(n, true)};
        values.push_back(st.outs[0]);
        break;
      }
      case 2: {  // scatter
        st.op = "scatter";
        auto idx = std::make_shared<std::vector<index_t>>();
        const index_t w = rng() % 2 == 0 ? 4 : 1;
        for (index_t i = 0; i < n / w; ++i) {
          idx->push_back(static_cast<index_t>(rng() % 5));
        }
        st.desc = fuse::scatter_desc(idx, 5, w);
        st.ins = {pick_val()};
        st.outs = {new_slot(5 * w, true)};
        // Scatter output occasionally read later: must never fuse into a
        // span that also reads it.
        if (rng() % 2 == 0) values.push_back(st.outs[0]);
        break;
      }
      case 3: {  // reduction
        st.op = "reduce";
        const int which = static_cast<int>(rng() % 3);
        const fuse::EOp op = which == 0   ? fuse::EOp::kSumAll
                             : which == 1 ? fuse::EOp::kSumDim0
                                          : fuse::EOp::kSumDim1;
        const index_t cols = which == 0 ? 0 : (rng() % 2 == 0 ? 4 : 6);
        st.desc = fuse::reduce_desc(op, n, cols);
        st.ins = {pick_val()};
        st.outs = {new_slot(which == 0 ? 1 : 4, true)};
        values.push_back(st.outs[0]);
        break;
      }
      case 4: {  // binary elementwise with random addressing
        st.op = "bin";
        const auto addr = [&]() {
          switch (rng() % 4) {
            case 0:
              return fuse::Addr::kScalar;
            case 1:
              return fuse::Addr::kRow;
            case 2:
              return fuse::Addr::kCol;
            default:
              return fuse::Addr::kElem;
          }
        };
        const fuse::Addr aa = addr(), ab = addr();
        const index_t cols =
            (aa != fuse::Addr::kElem && aa != fuse::Addr::kScalar) ||
                    (ab != fuse::Addr::kElem && ab != fuse::Addr::kScalar)
                ? (rng() % 2 == 0 ? 4 : 6)
                : 0;
        st.desc = fuse::ew_binary(fuse::EOp::kAdd, aa, ab, n, cols);
        st.ins = {pick_val(), pick_val()};
        st.outs = {new_slot(n, true)};
        values.push_back(st.outs[0]);
        break;
      }
      case 5: {  // accumulate into an external leaf (grad_accum shape)
        st.op = "accum";
        st.desc = fuse::ew_accum(n_a);
        const int dst = leaves[static_cast<std::size_t>(rng() % 3)];
        st.ins = {dst, pick_val()};
        st.outs = {dst};
        break;
      }
      default: {  // unary elementwise
        st.op = "ew";
        st.desc = fuse::ew_unary(fuse::EOp::kTanh, n);
        st.ins = {pick_val()};
        st.outs = {new_slot(n, true)};
        values.push_back(st.outs[0]);
        break;
      }
    }
    tape.steps.push_back(std::move(st));
  }
  return tape;
}

TEST_F(FuseTest, FuzzFindSpansInvariantsOnRandomTapes) {
  for (int iter = 0; iter < 300; ++iter) {
    const std::uint64_t seed = 0xfade0000u + static_cast<std::uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    SyntheticTape tape = random_tape(rng);
    const std::vector<fuse::Span> spans =
        fuse::find_spans(tape.steps, tape.slots);

    int prev_end = 0;
    for (const fuse::Span& sp : spans) {
      // Bounds, ordering, minimum size, register-file cap.
      ASSERT_GE(sp.begin, prev_end);
      ASSERT_LT(sp.begin, sp.end);
      ASSERT_LE(sp.end, static_cast<int>(tape.steps.size()));
      ASSERT_GE(sp.end - sp.begin, 2);
      ASSERT_LE(sp.end - sp.begin, fuse::kMaxSpanOps);
      prev_end = sp.end;

      int counted = 0;
      index_t span_cols = 0;
      for (int i = sp.begin; i < sp.end; ++i) {
        const fuse::TapeStep& st = tape.steps[static_cast<std::size_t>(i)];
        // No opaque step ever fuses.
        ASSERT_NE(st.desc.kind, fuse::StepDesc::Kind::kOpaque) << i;
        // Scatter/reduce only terminate a span.
        if (st.desc.kind == fuse::StepDesc::Kind::kScatter ||
            st.desc.kind == fuse::StepDesc::Kind::kReduce) {
          ASSERT_EQ(i, sp.end - 1) << "terminator mid-span";
        }
        // Geometry agreement: every imposed cols constraint matches.
        index_t c = 0;
        if (st.desc.kind == fuse::StepDesc::Kind::kGather ||
            st.desc.kind == fuse::StepDesc::Kind::kScatter) {
          c = st.desc.index.w;
        } else if (st.desc.ew.cols > 1) {
          c = st.desc.ew.cols;
        }
        if (c > 0) {
          if (span_cols == 0) span_cols = c;
          ASSERT_EQ(span_cols, c) << "conflicting cols in span at " << i;
        }
        counted += st.counted ? 1 : 0;
      }
      ASSERT_EQ(sp.counted, counted);
    }

    // fuse_tape must agree with its own span finder: step conservation
    // and reported stats.
    std::size_t expect_len = tape.steps.size();
    for (const fuse::Span& sp : spans) {
      expect_len -= static_cast<std::size_t>(sp.end - sp.begin - 1);
    }
    std::vector<fuse::TapeStep> rewritten = tape.steps;
    const fuse::FuseStats stats = fuse::fuse_tape(rewritten, tape.slots);
    ASSERT_EQ(rewritten.size(), expect_len);
    ASSERT_EQ(stats.spans, spans.size());
  }
}

// ---------------------------------------------------------------------------
// Memory planner property fuzz (satellite)
// ---------------------------------------------------------------------------

TEST_F(FuseTest, FuzzMemoryPlannerInvariants) {
  for (int iter = 0; iter < 300; ++iter) {
    const std::uint64_t seed = 0xbeef0000u + static_cast<std::uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const int n = static_cast<int>(rng() % 60);
    std::vector<BufferLife> lives;
    lives.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      BufferLife b;
      b.bytes = 4 * (1 + rng() % 400);
      switch (rng() % 4) {
        case 0:  // zero-length lifetime: def == last
          b.def = static_cast<int>(rng() % 50);
          b.last = b.def;
          break;
        case 1:  // nested inside a previous interval when one exists
          if (!lives.empty()) {
            const BufferLife& outer =
                lives[static_cast<std::size_t>(rng() % lives.size())];
            b.def = outer.def + static_cast<int>(rng() % 3);
            b.last = std::max(b.def, outer.last - static_cast<int>(rng() % 3));
            break;
          }
          [[fallthrough]];
        default:  // arbitrary overlap
          b.def = static_cast<int>(rng() % 50);
          b.last = b.def + static_cast<int>(rng() % 25);
          break;
      }
      lives.push_back(b);
    }
    const MemPlan plan = replay::plan_memory(lives);
    // Never admits an overlap (brute force), offsets stay aligned, and the
    // slab never beats the max-live lower bound.
    ASSERT_TRUE(replay::plan_valid(plan));
    for (const BufferLife& b : plan.buffers) {
      ASSERT_EQ(b.offset % MemPlan::kAlign, 0u);
    }
    ASSERT_GE(plan.slab_bytes, plan.lower_bound_bytes);
  }
}

// ---------------------------------------------------------------------------
// Integration differentials: trainer / DP / serve, fusion on vs off
// ---------------------------------------------------------------------------

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.feat_dim = 12;
  cfg.num_radial = 7;
  cfg.num_angular = 7;
  cfg.num_layers = 2;
  return cfg;
}

data::Dataset identical_rows(index_t n, std::uint64_t seed) {
  data::GeneratorConfig g;
  g.min_atoms = 4;
  g.max_atoms = 6;
  data::Dataset one = data::Dataset::generate(1, seed, g);
  std::vector<data::Crystal> crystals(static_cast<std::size_t>(n),
                                      one[0].crystal);
  return data::Dataset::from_crystals(std::move(crystals));
}

std::vector<index_t> all_rows(const data::Dataset& ds) {
  std::vector<index_t> idx(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  return idx;
}

std::vector<float> flatten_parameters(const model::CHGNet& net) {
  std::vector<float> flat;
  for (const ag::Var& p : net.parameters()) {
    const std::vector<float> v = p.value().to_vector();
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return flat;
}

float max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

struct TrainRun {
  std::vector<float> params;
  std::string checkpoint;
  std::shared_ptr<Program> program;
};

TrainRun train_with_fuse(bool fuse_on, const std::string& ckpt_path) {
  replay::set_replay_enabled(true);
  fuse::set_fuse_enabled(fuse_on);
  data::Dataset ds = identical_rows(12, 51);
  model::CHGNet net(tiny_config(), 9);
  train::TrainConfig tc;
  tc.batch_size = 4;
  tc.epochs = 4;
  train::Trainer trainer(net, tc);
  TrainRun run;
  trainer.fit(ds, all_rows(ds));
  run.params = flatten_parameters(net);
  const auto programs = trainer.replay_cache().programs();
  if (!programs.empty()) run.program = programs.front();
  trainer.save_checkpoint(ckpt_path);
  run.checkpoint = ckpt_path;
  return run;
}

TEST_F(FuseTest, TrainerFusedBitExactAndRemovesAQuarterOfKernels) {
  const TrainRun fused =
      train_with_fuse(true, ::testing::TempDir() + "fuse_on.ckpt");
  const TrainRun raw =
      train_with_fuse(false, ::testing::TempDir() + "fuse_off.ckpt");

  EXPECT_EQ(max_abs_diff(fused.params, raw.params), 0.0f);
  EXPECT_EQ(read_file(fused.checkpoint), read_file(raw.checkpoint))
      << "fusion must not perturb weights, Adam state, or the RNG stream";

  ASSERT_TRUE(fused.program != nullptr);
  ASSERT_TRUE(raw.program != nullptr);
  EXPECT_EQ(fused.program->fingerprint(), raw.program->fingerprint());
  EXPECT_EQ(raw.program->fused_spans(), 0u);

  // Acceptance gate: >= 25% of the trainer tape's counted kernels fuse
  // away, and the fused plan never needs more slab than the raw one.
  const double kept = static_cast<double>(fused.program->counted_kernels());
  const double was =
      static_cast<double>(fused.program->raw_counted_kernels());
  EXPECT_EQ(fused.program->raw_counted_kernels(),
            raw.program->raw_counted_kernels());
  EXPECT_LE(kept, was * 0.75)
      << "trainer tape: " << kept << " of " << was << " kernels kept";
  EXPECT_LE(fused.program->plan_bytes(), raw.program->plan_bytes());
  EXPECT_GT(fused.program->fused_slots_eliminated(), 0u);
}

TEST_F(FuseTest, DataParallelFusedBitExactOnEveryReplica) {
  const auto dp_train = [](bool fuse_on, float* divergence) {
    replay::set_replay_enabled(true);
    fuse::set_fuse_enabled(fuse_on);
    data::Dataset ds = identical_rows(16, 71);
    parallel::DataParallelConfig cfg;
    cfg.num_devices = 2;
    cfg.global_batch = 4;
    parallel::DataParallelTrainer dp(tiny_config(), cfg, 17);
    for (index_t e = 0; e < 3; ++e) dp.train_epoch(ds, all_rows(ds), e);
    if (divergence != nullptr) *divergence = dp.replica_divergence();
    return flatten_parameters(dp.master());
  };
  float div_on = -1.0f, div_off = -1.0f;
  const std::vector<float> on = dp_train(true, &div_on);
  const std::vector<float> off = dp_train(false, &div_off);
  EXPECT_EQ(max_abs_diff(on, off), 0.0f);
  EXPECT_EQ(div_on, 0.0f);
  EXPECT_EQ(div_off, 0.0f);
}

TEST_F(FuseTest, ServeFusedForwardBitExactVsUnfused) {
  const auto serve_once = [](bool fuse_on) {
    replay::set_replay_enabled(true);
    fuse::set_fuse_enabled(fuse_on);
    data::Dataset ds = identical_rows(4, 81);
    model::CHGNet net(tiny_config(), 12);
    serve::EngineConfig cfg;
    cfg.max_batch = 4;
    cfg.cache_capacity = 0;
    serve::InferenceEngine engine(net, cfg);
    std::vector<serve::Prediction> out;
    for (int tick = 0; tick < 8; ++tick) {
      for (index_t i = 0; i < ds.size(); ++i) {
        EXPECT_TRUE(engine.submit(ds[i].crystal).ok());
      }
      for (auto& r : engine.drain()) {
        EXPECT_TRUE(r.ok());
        if (r.ok()) out.push_back(r.value());
      }
    }
    return out;
  };
  const auto on = serve_once(true);
  const auto off = serve_once(false);
  ASSERT_EQ(on.size(), off.size());
  ASSERT_FALSE(on.empty());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i].energy, off[i].energy) << i;
    ASSERT_EQ(on[i].forces.size(), off[i].forces.size());
    for (std::size_t a = 0; a < on[i].forces.size(); ++a) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(on[i].forces[a][d], off[i].forces[a][d]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Golden tapes (satellite): exact kernel/span counts at a fixed topology
// ---------------------------------------------------------------------------

TEST_F(FuseTest, GoldenTrainerTapeCounts) {
  const TrainRun fused =
      train_with_fuse(true, ::testing::TempDir() + "fuse_golden.ckpt");
  ASSERT_TRUE(fused.program != nullptr);
  const Program& p = *fused.program;
  EXPECT_EQ(p.raw_counted_kernels(), kGoldenTrainerRaw);
  EXPECT_EQ(p.counted_kernels(), kGoldenTrainerCounted);
  EXPECT_EQ(p.fused_spans(), kGoldenTrainerSpans);
  EXPECT_EQ(p.fused_kernels_removed(),
            kGoldenTrainerRaw - kGoldenTrainerCounted);
}

TEST_F(FuseTest, GoldenServeTapeCounts) {
  replay::set_replay_enabled(true);
  fuse::set_fuse_enabled(true);
  data::Dataset ds = identical_rows(4, 81);
  model::CHGNet net(tiny_config(), 12);
  serve::EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.cache_capacity = 0;
  serve::InferenceEngine engine(net, cfg);
  for (int tick = 0; tick < 4; ++tick) {
    for (index_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(engine.submit(ds[i].crystal).ok());
    }
    (void)engine.drain();
  }
  const auto programs = engine.replay_cache().programs();
  ASSERT_EQ(programs.size(), 1u);
  EXPECT_EQ(programs[0]->raw_counted_kernels(), kGoldenServeRaw);
  EXPECT_EQ(programs[0]->counted_kernels(), kGoldenServeCounted);
  EXPECT_EQ(programs[0]->fused_spans(), kGoldenServeSpans);
}

TEST_F(FuseTest, GoldenDataParallelTapeCounts) {
  replay::set_replay_enabled(true);
  fuse::set_fuse_enabled(true);
  data::Dataset ds = identical_rows(16, 71);
  parallel::DataParallelConfig cfg;
  cfg.num_devices = 2;
  cfg.global_batch = 4;
  parallel::DataParallelTrainer dp(tiny_config(), cfg, 17);
  for (index_t e = 0; e < 3; ++e) dp.train_epoch(ds, all_rows(ds), e);
  const auto programs = dp.replay_cache(0).programs();
  ASSERT_EQ(programs.size(), 1u);
  EXPECT_EQ(programs[0]->raw_counted_kernels(), kGoldenDpRaw);
  EXPECT_EQ(programs[0]->counted_kernels(), kGoldenDpCounted);
  EXPECT_EQ(programs[0]->fused_spans(), kGoldenDpSpans);
}

// ---------------------------------------------------------------------------
// replay_plan_bytes gauge audit (satellite)
// ---------------------------------------------------------------------------

Tensor random_square(std::mt19937_64& rng, index_t n) {
  return random_tensor(rng, {n, n});
}

std::shared_ptr<Program> capture_tiny(const Tensor& x, const Tensor& y) {
  Recorder rec;
  rec.bind_input(x);
  rec.bind_input(y);
  Tensor out;
  {
    RecorderScope scope(rec);
    ag::Var vx = ag::ops::constant(x);
    ag::Var vy = ag::ops::constant(y);
    out = ag::ops::mul(ag::ops::add(ag::ops::matmul(vx, vy), vx), vy).value();
  }
  rec.tap(out);
  return rec.finish();
}

TEST_F(FuseTest, PlanBytesGaugeDoesNotDriftAcrossInvalidateRecapture) {
  replay::set_replay_enabled(true);
  fuse::set_fuse_enabled(true);
  const std::uint64_t base =
      perf::counters().snapshot().replay_plan_bytes;
  std::mt19937_64 rng(0x9a6eu);
  const std::uint64_t key = 0x60'1de'11u;
  {
    ProgramCache cache(4);
    (void)cache.acquire(key);
    ASSERT_EQ(cache.acquire(key).action, ProgramCache::Action::kCapture);
    cache.store(key, capture_tiny(random_square(rng, 4),
                                  random_square(rng, 4)));
    std::uint64_t with_program = 0;
    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE("round=" + std::to_string(round));
      std::uint64_t pb = 0;
      {
        // Scope the snapshot: a lingering shared_ptr would keep the slab
        // alive through the invalidate below.
        const auto programs = cache.programs();
        ASSERT_EQ(programs.size(), 1u);
        pb = programs[0]->plan_bytes();
      }
      const std::uint64_t now =
          perf::counters().snapshot().replay_plan_bytes;
      ASSERT_EQ(now, base + pb);
      if (round == 0) {
        with_program = now;
      } else {
        ASSERT_EQ(now, with_program) << "gauge drifted across recapture";
      }
      // Invalidate: the program (and its slab) must leave the gauge.
      cache.invalidate(key);
      ASSERT_EQ(perf::counters().snapshot().replay_plan_bytes, base);
      // Self-heal: the invalidated sighting counted as the eager pass, so
      // the very next sighting re-captures (and re-fuses).
      ASSERT_EQ(cache.acquire(key).action, ProgramCache::Action::kCapture);
      cache.store(key, capture_tiny(random_square(rng, 4),
                                    random_square(rng, 4)));
    }
  }
  // Cache destroyed: everything returns to baseline.
  EXPECT_EQ(perf::counters().snapshot().replay_plan_bytes, base);
}

// The tiny matmul -> add -> mul tape is the smallest fused-span shape:
// [add, mul] fuses into one kernel, the add intermediate vanishes.
TEST_F(FuseTest, TinyTapeFusesAddMulAndEliminatesTheIntermediate) {
  replay::set_replay_enabled(true);
  std::mt19937_64 rng(0x7177u);
  const Tensor x = random_square(rng, 4), y = random_square(rng, 4);
  fuse::set_fuse_enabled(true);
  const auto fused = capture_tiny(x, y);
  fuse::set_fuse_enabled(false);
  const auto raw = capture_tiny(x, y);

  EXPECT_EQ(raw->num_steps(), 3u);
  EXPECT_EQ(fused->num_steps(), 2u);  // matmul + fused(add, mul)
  EXPECT_EQ(fused->fused_spans(), 1u);
  EXPECT_EQ(fused->fused_kernels_removed(), 1u);
  EXPECT_EQ(fused->fused_slots_eliminated(), 1u);
  EXPECT_EQ(fused->raw_counted_kernels(), 3u);
  EXPECT_EQ(fused->counted_kernels(), 2u);
  // Max-live here is two 4x4 buffers either way (matmul out + final out
  // overlap at the fused step), so the slab can only stay equal or shrink.
  EXPECT_LE(fused->plan_bytes(), raw->plan_bytes());

  const Tensor x2 = random_square(rng, 4), y2 = random_square(rng, 4);
  ASSERT_TRUE(fused->bind({x2, y2}, {}));
  fused->run();
  ASSERT_TRUE(raw->bind({x2, y2}, {}));
  raw->run();
  expect_bytes_equal(fused->tap_value(0), raw->tap_value(0), "tiny tape");
}

TEST_F(FuseTest, PureElementwiseChainShrinksThePlan) {
  // tanh -> square -> mul_scalar with only the end tapped: both
  // intermediates fuse away, so the fused slab holds one buffer where the
  // raw plan's max-live needs two.
  replay::set_replay_enabled(true);
  std::mt19937_64 rng(0x5eafu);
  const auto capture = [&](const Tensor& x, bool fuse_on) {
    fuse::set_fuse_enabled(fuse_on);
    Recorder rec;
    rec.bind_input(x);
    Tensor out;
    {
      RecorderScope scope(rec);
      out = ag::ops::mul_scalar(
                ag::ops::square(ag::ops::tanh_op(ag::ops::constant(x))), 0.5f)
                .value();
    }
    rec.tap(out);
    return rec.finish();
  };
  const Tensor x0 = random_tensor(rng, {8, 3});
  const auto fused = capture(x0, true);
  const auto raw = capture(x0, false);
  EXPECT_EQ(fused->num_steps(), 1u);
  EXPECT_EQ(fused->fused_slots_eliminated(), 2u);
  EXPECT_LT(fused->plan_bytes(), raw->plan_bytes())
      << "eliminated intermediates must shrink the slab";
  const Tensor x = random_tensor(rng, {8, 3});
  ASSERT_TRUE(fused->bind({x}, {}));
  fused->run();
  ASSERT_TRUE(raw->bind({x}, {}));
  raw->run();
  expect_bytes_equal(fused->tap_value(0), raw->tap_value(0), "ew chain");
}

}  // namespace
}  // namespace fastchg
