// Quickstart: generate a synthetic MPtrj-like dataset, train FastCHGNet for
// a few epochs, and evaluate energy / force / stress / magmom MAEs.
//
//   $ ./examples/quickstart
//
// This walks the whole public API surface in ~40 lines: Dataset ->
// ModelConfig -> CHGNet -> Trainer -> EvalMetrics.
#include <cstdio>

#include "chgnet/model.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace fastchg;

  // 1. A labelled dataset: random periodic crystals with energies, forces,
  //    stresses and magnetic moments from the built-in DFT oracle.
  std::printf("generating dataset...\n");
  data::Dataset ds = data::Dataset::generate(/*n=*/192, /*seed=*/7);
  data::Dataset::Split split = ds.split(/*val=*/0.1, /*test=*/0.1, /*seed=*/1);

  // 2. FastCHGNet: every optimization from the paper switched on.  (Use
  //    ModelConfig::reference() for the original CHGNet behaviour.)
  model::ModelConfig cfg = model::ModelConfig::fast();
  cfg.feat_dim = 32;   // paper uses 64; smaller here for a fast demo
  cfg.num_radial = 15; // paper uses 31
  cfg.num_angular = 15;
  model::CHGNet net(cfg, /*seed=*/42);
  std::printf("model: %s, %lld parameters\n", cfg.tag().c_str(),
              static_cast<long long>(net.num_parameters()));

  // 3. Train with Adam + cosine annealing; Eq. 14 scales the LR with batch.
  train::TrainConfig tc;
  tc.batch_size = 16;
  tc.epochs = 6;
  tc.base_lr = 1e-3f;
  train::Trainer trainer(net, tc);
  trainer.on_epoch = [](index_t e, const train::EpochStats& st) {
    std::printf("epoch %lld: loss %.4f (%lld iters, %.1fs)\n",
                static_cast<long long>(e), st.mean_loss,
                static_cast<long long>(st.iterations), st.seconds);
  };
  trainer.fit(ds, split.train);

  // 4. Evaluate on the held-out test set.
  train::EvalMetrics m = trainer.evaluate(ds, split.test);
  std::printf("\ntest-set MAE:\n");
  std::printf("  energy : %7.1f meV/atom\n", m.energy_mae_mev_atom);
  std::printf("  force  : %7.1f meV/A\n", m.force_mae_mev_a);
  std::printf("  stress : %7.3f GPa\n", m.stress_mae_gpa);
  std::printf("  magmom : %7.1f m.muB\n", m.magmom_mae_mmub);
  std::printf("  energy R^2 %.3f, force R^2 %.3f\n", m.energy_r2, m.force_r2);
  return 0;
}
