// Structure-relaxation example: rattle a crystal away from its oracle-
// relaxed geometry, then relax it on a trained FastCHGNet potential-energy
// surface -- the IS2RE-style task the paper cites when motivating direct
// force prediction.
//
//   $ ./examples/relaxation
#include <cstdio>
#include <limits>

#include "md/relax.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace fastchg;

  // Train a derivative-readout model (forces = -dE/dx) so relaxation
  // descends a consistent energy surface.
  std::printf("training potential...\n");
  model::ModelConfig cfg = model::ModelConfig::fast_no_head();
  cfg.feat_dim = 16;
  cfg.num_radial = 9;
  cfg.num_angular = 9;
  cfg.num_layers = 2;
  model::CHGNet net(cfg, 9);
  data::GeneratorConfig gen;
  gen.min_atoms = 4;
  gen.max_atoms = 10;
  data::Dataset ds = data::Dataset::generate(96, 31, gen);
  train::TrainConfig tc;
  tc.batch_size = 16;
  tc.epochs = 4;
  tc.base_lr = 1e-3f;
  train::Trainer trainer(net, tc);
  std::vector<index_t> rows;
  for (index_t i = 0; i < ds.size(); ++i) rows.push_back(i);
  trainer.fit(ds, rows);

  // Rattle several structures, pick the one the model feels most strained
  // about, and relax it until the max force halves.
  Rng rng(77);
  data::Crystal worst;
  double worst_fmax = -1.0;
  for (index_t i = 0; i < 8; ++i) {
    data::Crystal c = ds[i].crystal;
    const data::Mat3 lat_inv = data::inv3(c.lattice);
    for (auto& f : c.frac) {
      data::Vec3 dr{rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4),
                    rng.uniform(-0.4, 0.4)};
      const data::Vec3 df = data::mat_vec(lat_inv, dr);
      for (int d = 0; d < 3; ++d) f[d] += df[d];
    }
    md::RelaxConfig probe;
    probe.max_steps = 0;  // evaluation only
    md::RelaxResult r = md::relax(net, c, probe);
    if (r.initial_fmax > worst_fmax) {
      worst_fmax = r.initial_fmax;
      worst = c;
    }
  }

  std::printf("\nrelaxing the most-strained rattled crystal "
              "(%lld atoms, |F|max %.2f eV/A)...\n",
              static_cast<long long>(worst.natoms()), worst_fmax);
  md::RelaxConfig rc;
  rc.max_steps = 60;
  rc.fmax_tol = 0.5 * worst_fmax;
  // Entry-point validation: try_relax() rejects malformed structures and
  // non-finite model outputs as typed errors instead of corrupting the
  // geometry (a NaN coordinate here demonstrates the rejection).
  {
    data::Crystal broken = worst;
    broken.frac[0][0] = std::numeric_limits<double>::quiet_NaN();
    auto rejected = md::try_relax(net, broken, rc);
    std::printf("sanity: NaN coordinate rejected as [%s]\n",
                serve::to_string(rejected.code()));
  }
  auto r = md::try_relax(net, worst, rc);
  if (!r.ok()) {
    std::fprintf(stderr, "relax failed [%s]: %s\n",
                 serve::to_string(r.code()), r.error().message.c_str());
    return 2;
  }
  const md::RelaxResult& res = r.value();
  std::printf("steps      : %lld\n", static_cast<long long>(res.steps));
  std::printf("converged  : %s (|F|max target %.2f eV/A%s)\n",
              res.converged ? "yes" : "no", rc.fmax_tol,
              res.oscillating ? ", stopped early: oscillating" : "");
  std::printf("energy     : %.4f -> %.4f eV (d = %.4f)\n",
              res.initial_energy, res.final_energy,
              res.final_energy - res.initial_energy);
  std::printf("|F|max     : %.3f -> %.3f eV/A\n", res.initial_fmax,
              res.final_fmax);
  return 0;
}
