// Extension example (paper Sec. VII future work): train a FastCHGNet,
// checkpoint it, int8-quantize the weights, and measure what the
// compression costs in test accuracy.
//
//   $ ./examples/quantized_inference
#include <cstdio>
#include <filesystem>

#include "fastchgnet/quantize.hpp"
#include "nn/serialize.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace fastchg;

  data::Dataset ds = data::Dataset::generate(160, 13);
  auto split = ds.split(0.0, 0.15, 2);

  model::ModelConfig cfg = model::ModelConfig::fast();
  cfg.feat_dim = 24;
  cfg.num_radial = 11;
  cfg.num_angular = 11;
  model::CHGNet net(cfg, 8);

  std::printf("training FastCHGNet (%lld params)...\n",
              static_cast<long long>(net.num_parameters()));
  train::TrainConfig tc;
  tc.batch_size = 16;
  tc.epochs = 6;
  tc.base_lr = 1e-3f;
  train::Trainer trainer(net, tc);
  trainer.fit(ds, split.train);

  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "fastchgnet_fp32.bin")
          .string();
  nn::save_parameters(net, ckpt);
  std::printf("checkpoint written to %s (%.1f KB fp32)\n", ckpt.c_str(),
              static_cast<double>(net.num_parameters()) * 4.0 / 1024.0);

  train::EvalMetrics fp32 = trainer.evaluate(ds, split.test);
  model::QuantizationReport rep = model::quantize_for_inference(net);
  train::EvalMetrics int8 = trainer.evaluate(ds, split.test);

  std::printf("\nint8 weight quantization:\n");
  std::printf("  tensors %lld, elements %lld\n",
              static_cast<long long>(rep.tensors),
              static_cast<long long>(rep.elements));
  std::printf("  payload %.1f KB -> %.1f KB (%.2fx compression)\n",
              rep.fp32_bytes / 1024.0, rep.int8_bytes / 1024.0,
              rep.fp32_bytes / rep.int8_bytes);
  std::printf("  weight error: max %.2e, mean %.2e\n", rep.max_abs_error,
              rep.mean_abs_error);
  std::printf("\n%-10s %12s %12s %12s %12s\n", "weights", "E(meV/at)",
              "F(meV/A)", "S(GPa)", "M(m.muB)");
  std::printf("%-10s %12.1f %12.1f %12.3f %12.1f\n", "fp32",
              fp32.energy_mae_mev_atom, fp32.force_mae_mev_a,
              fp32.stress_mae_gpa, fp32.magmom_mae_mmub);
  std::printf("%-10s %12.1f %12.1f %12.3f %12.1f\n", "int8",
              int8.energy_mae_mev_atom, int8.force_mae_mev_a,
              int8.stress_mae_gpa, int8.magmom_mae_mmub);
  std::printf("\n(The paper notes interatomic potentials are accuracy-"
              "sensitive; this quantifies the int8 deployment cost.)\n");

  // Restore the fp32 weights from the checkpoint to show the round trip.
  nn::load_parameters(net, ckpt);
  train::EvalMetrics restored = trainer.evaluate(ds, split.test);
  std::printf("restored fp32 checkpoint: E %.1f meV/atom (matches fp32 row: "
              "%s)\n",
              restored.energy_mae_mev_atom,
              std::abs(restored.energy_mae_mev_atom -
                       fp32.energy_mae_mev_atom) < 1e-6
                  ? "yes"
                  : "no");
  std::filesystem::remove(ckpt);
  return 0;
}
