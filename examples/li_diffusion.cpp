// Li-ion diffusion example -- the application domain the paper motivates
// CHGNet with (LixMnO2-class battery materials): train a potential, run NVT
// molecular dynamics on a LiMnO2-like crystal at elevated temperature,
// track the Li-resolved mean-squared displacement, and estimate the
// diffusion coefficient D = MSD / (6 t).  Also infers per-atom oxidation
// states from the predicted magnetic moments -- CHGNet's charge-informed
// capability.
//
//   $ ./examples/li_diffusion
#include <cstdio>

#include "chgnet/charge.hpp"
#include "md/md.hpp"
#include "md/observables.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace fastchg;

  // 1. Train a small derivative-readout FastCHGNet on oracle-labelled data.
  std::printf("training potential...\n");
  model::ModelConfig cfg = model::ModelConfig::fast_no_head();
  cfg.feat_dim = 16;
  cfg.num_radial = 9;
  cfg.num_angular = 9;
  cfg.num_layers = 2;
  model::CHGNet net(cfg, 77);
  data::GeneratorConfig gen;
  gen.min_atoms = 4;
  gen.max_atoms = 12;
  data::Dataset ds = data::Dataset::generate(96, 55, gen);
  train::TrainConfig tc;
  tc.batch_size = 16;
  tc.epochs = 4;
  tc.base_lr = 1e-3f;
  train::Trainer trainer(net, tc);
  std::vector<index_t> rows;
  for (index_t i = 0; i < ds.size(); ++i) rows.push_back(i);
  trainer.fit(ds, rows);

  // 2. NVT MD on LiMnO2 at elevated temperature (Langevin thermostat).
  data::Crystal start = data::make_reference_structure("LiMnO2");
  std::vector<index_t> li_atoms, host_atoms;
  for (index_t i = 0; i < start.natoms(); ++i) {
    (start.species[static_cast<std::size_t>(i)] == 3 ? li_atoms : host_atoms)
        .push_back(i);
  }
  std::printf("\nNVT MD on LiMnO2 (%zu Li, %zu host atoms) at 800 K...\n",
              li_atoms.size(), host_atoms.size());

  md::MDConfig mdc;
  mdc.dt_fs = 0.5;
  mdc.init_temperature_k = 800.0;
  mdc.ensemble = md::Ensemble::kNVTLangevin;
  mdc.target_temperature_k = 800.0;
  mdc.friction_fs = 0.2;
  md::MDSimulator sim(net, start, mdc);
  md::MsdTracker msd(sim.crystal());

  std::printf("%8s %8s %14s %14s %14s\n", "step", "T(K)", "MSD_Li(A^2)",
              "MSD_host(A^2)", "D_Li(A^2/fs)");
  const index_t block = 10;
  for (int b = 1; b <= 8; ++b) {
    sim.step(block);
    msd.update(sim.crystal());
    const double t_fs = static_cast<double>(sim.steps_taken()) * mdc.dt_fs;
    const double msd_li = msd.msd(li_atoms);
    const double d_li = msd_li / (6.0 * t_fs);
    std::printf("%8lld %8.0f %14.4f %14.4f %14.6f\n",
                static_cast<long long>(sim.steps_taken()), sim.temperature(),
                msd_li, msd.msd(host_atoms), d_li);
  }
  std::printf("(light Li ions should out-diffuse the Mn/O host lattice)\n");

  // 3. Charge-informed analysis: oxidation states from predicted magmoms.
  data::Dataset snap = data::Dataset::from_crystals({sim.crystal()}, {}, {},
                                                    /*relabel=*/false);
  data::Batch b = data::collate_indices(snap, {0});
  model::ModelOutput out = net.forward(b, model::ForwardMode::kEval);
  std::vector<double> magmoms;
  for (index_t i = 0; i < b.num_atoms; ++i) {
    magmoms.push_back(static_cast<double>(out.magmom.value().data()[i]));
  }
  auto charges = model::infer_charges(
      std::vector<index_t>(b.species.begin(), b.species.end()), magmoms);
  std::printf("\ninferred oxidation states (from predicted magmoms):\n");
  for (index_t i = 0; i < b.num_atoms; ++i) {
    std::printf("  atom %lld (Z=%lld): magmom %+.3f -> %+d\n",
                static_cast<long long>(i),
                static_cast<long long>(b.species[static_cast<std::size_t>(i)]),
                magmoms[static_cast<std::size_t>(i)],
                charges.oxidation[static_cast<std::size_t>(i)]);
  }
  std::printf("total charge %+d (%s)\n", charges.total_charge,
              charges.neutral ? "neutral" : "not neutral");
  return 0;
}
