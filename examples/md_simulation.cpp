// MD example: briefly train a FastCHGNet potential on oracle-labelled data,
// then run NVE molecular dynamics on a LiMnO2-like crystal -- the paper's
// Table-II scenario -- reporting energy and temperature along the way.
//
//   $ ./examples/md_simulation
#include <cstdio>

#include "md/md.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace fastchg;

  // Train a small FastCHGNet on oracle data so the MD runs on a fitted
  // potential-energy surface rather than random weights.
  std::printf("training a small FastCHGNet potential...\n");
  model::ModelConfig cfg = model::ModelConfig::fast_no_head();
  cfg.feat_dim = 16;
  cfg.num_radial = 9;
  cfg.num_angular = 9;
  cfg.num_layers = 2;
  model::CHGNet net(cfg, 3);
  data::GeneratorConfig gen;
  gen.min_atoms = 4;
  gen.max_atoms = 12;
  data::Dataset ds = data::Dataset::generate(96, 11, gen);
  train::TrainConfig tc;
  tc.batch_size = 16;
  tc.epochs = 4;
  tc.base_lr = 1e-3f;
  train::Trainer trainer(net, tc);
  std::vector<index_t> rows;
  for (index_t i = 0; i < ds.size(); ++i) rows.push_back(i);
  trainer.fit(ds, rows);

  // The Table-II benchmark structure.
  data::Crystal start = data::make_reference_structure("LiMnO2");
  std::printf("\nrunning NVE MD on LiMnO2 (%lld atoms)...\n",
              static_cast<long long>(start.natoms()));
  md::MDConfig mdc;
  mdc.dt_fs = 0.2;
  mdc.init_temperature_k = 200.0;
  md::MDSimulator sim(net, start, mdc);

  std::printf("%8s %14s %14s %14s %10s\n", "step", "E_pot (eV)", "E_kin (eV)",
              "E_tot (eV)", "T (K)");
  const double e0 = sim.total_energy();
  for (int block = 0; block <= 10; ++block) {
    std::printf("%8lld %14.4f %14.4f %14.4f %10.1f\n",
                static_cast<long long>(sim.steps_taken()),
                sim.potential_energy(), sim.kinetic_energy(),
                sim.total_energy(), sim.temperature());
    if (block < 10) sim.step(5);
  }
  const double drift = sim.total_energy() - e0;
  std::printf("\ntotal-energy drift after %lld steps: %.4f eV "
              "(NVE: should stay small)\n",
              static_cast<long long>(sim.steps_taken()), drift);
  const double per_step = sim.step(3);
  std::printf("one-step MD time: %.4f s (Table II measures this quantity)\n",
              per_step);
  return 0;
}
