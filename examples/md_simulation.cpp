// MD example: briefly train a FastCHGNet potential on oracle-labelled data,
// then run NVE molecular dynamics on a LiMnO2-like crystal -- the paper's
// Table-II scenario -- reporting energy and temperature along the way.
//
//   $ ./examples/md_simulation
#include <cstdio>

#include "md/md.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace fastchg;

  // Train a small FastCHGNet on oracle data so the MD runs on a fitted
  // potential-energy surface rather than random weights.
  std::printf("training a small FastCHGNet potential...\n");
  model::ModelConfig cfg = model::ModelConfig::fast_no_head();
  cfg.feat_dim = 16;
  cfg.num_radial = 9;
  cfg.num_angular = 9;
  cfg.num_layers = 2;
  model::CHGNet net(cfg, 3);
  data::GeneratorConfig gen;
  gen.min_atoms = 4;
  gen.max_atoms = 12;
  data::Dataset ds = data::Dataset::generate(96, 11, gen);
  train::TrainConfig tc;
  tc.batch_size = 16;
  tc.epochs = 4;
  tc.base_lr = 1e-3f;
  train::Trainer trainer(net, tc);
  std::vector<index_t> rows;
  for (index_t i = 0; i < ds.size(); ++i) rows.push_back(i);
  trainer.fit(ds, rows);

  // The Table-II benchmark structure.  Entry-point validation: the typed
  // create() rejects broken inputs (and a poisoned model) with a
  // diagnostic instead of crashing deep inside the graph builder.
  data::Crystal start = data::make_reference_structure("LiMnO2");
  std::printf("\nrunning NVE MD on LiMnO2 (%lld atoms)...\n",
              static_cast<long long>(start.natoms()));
  md::MDConfig mdc;
  mdc.dt_fs = 0.2;
  mdc.init_temperature_k = 200.0;
  mdc.max_drift_ev_per_atom = 0.5;  // watchdog: halve dt on an energy jump
  {
    data::Crystal broken = start;
    broken.lattice[1] = broken.lattice[0];  // singular cell
    auto rejected = md::MDSimulator::create(net, broken, mdc);
    std::printf("sanity: singular cell rejected as [%s] %s\n",
                serve::to_string(rejected.code()),
                rejected.error().message.c_str());
  }
  auto made = md::MDSimulator::create(net, start, mdc);
  if (!made.ok()) {
    std::fprintf(stderr, "MD setup failed [%s]: %s\n",
                 serve::to_string(made.code()), made.error().message.c_str());
    return 2;
  }
  md::MDSimulator sim = std::move(made).value();

  std::printf("%8s %14s %14s %14s %10s\n", "step", "E_pot (eV)", "E_kin (eV)",
              "E_tot (eV)", "T (K)");
  const double e0 = sim.total_energy();
  for (int block = 0; block <= 10; ++block) {
    std::printf("%8lld %14.4f %14.4f %14.4f %10.1f\n",
                static_cast<long long>(sim.steps_taken()),
                sim.potential_energy(), sim.kinetic_energy(),
                sim.total_energy(), sim.temperature());
    if (block < 10) {
      auto r = sim.try_step(5);
      if (!r.ok()) {
        std::fprintf(stderr, "MD aborted [%s]: %s\n",
                     serve::to_string(r.code()), r.error().message.c_str());
        return 2;
      }
    }
  }
  const double drift = sim.total_energy() - e0;
  std::printf("\ntotal-energy drift after %lld steps: %.4f eV "
              "(NVE: should stay small; %lld dt halvings spent)\n",
              static_cast<long long>(sim.steps_taken()), drift,
              static_cast<long long>(sim.dt_halvings_total()));
  const double per_step = sim.step(3);
  std::printf("one-step MD time: %.4f s (Table II measures this quantity)\n",
              per_step);
  return 0;
}
