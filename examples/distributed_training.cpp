// Distributed-training example: FastCHGNet on a 4-device virtual cluster
// with the load-balance sampler, gradient all-reduce, Eq.-14 LR scaling,
// communication overlap and prefetch -- the full multi-GPU recipe of the
// paper, at laptop scale.
//
//   $ ./examples/distributed_training
#include <cstdio>

#include "parallel/data_parallel.hpp"

int main() {
  using namespace fastchg;

  data::Dataset ds = data::Dataset::generate(128, 21);
  std::vector<index_t> rows;
  for (index_t i = 0; i < ds.size(); ++i) rows.push_back(i);

  model::ModelConfig mcfg = model::ModelConfig::fast();
  mcfg.feat_dim = 16;
  mcfg.num_radial = 9;
  mcfg.num_angular = 9;
  mcfg.num_layers = 2;

  for (const bool balanced : {false, true}) {
    parallel::DataParallelConfig cfg;
    cfg.num_devices = 4;
    cfg.global_batch = 32;
    cfg.load_balance = balanced;
    cfg.scale_lr = true;  // Eq. 14 on the global batch
    parallel::DataParallelTrainer dp(mcfg, cfg, /*model_seed=*/5);
    std::printf("\n=== %s sampler (4 virtual GPUs, global batch 32, "
                "LR %.2e) ===\n",
                balanced ? "load-balance" : "default", dp.effective_lr());
    for (index_t epoch = 0; epoch < 2; ++epoch) {
      parallel::EpochResult res = dp.train_epoch(ds, rows, epoch);
      double worst_skew = 0.0;
      for (const auto& it : res.iterations) {
        const double mean =
            std::accumulate(it.device_compute_s.begin(),
                            it.device_compute_s.end(), 0.0) /
            it.device_compute_s.size();
        worst_skew = std::max(worst_skew, it.max_compute_s / mean);
      }
      std::printf("epoch %lld: loss %.4f | simulated step time %.3fs/iter, "
                  "worst compute skew %.2fx, replicas in sync: %s\n",
                  static_cast<long long>(epoch), res.mean_loss,
                  res.simulated_seconds / res.iterations.size(), worst_skew,
                  dp.replica_divergence() == 0.0f ? "yes" : "NO");
    }
  }
  std::printf("\nThe load-balance sampler should show a smaller worst "
              "compute skew (paper Fig. 9: CoV 0.186 -> 0.064).\n");
  return 0;
}
